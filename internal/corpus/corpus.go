// Package corpus generates the synthetic data sets the experiments run on,
// substituting for the paper's gcc/emacs release pairs and its 10,000-page
// nightly web recrawl (see DESIGN.md, substitutions table).
//
// Everything is deterministic in the seed, so experiments and tests are
// reproducible. The generators expose exactly the knobs the algorithms are
// sensitive to: file sizes, the fraction of changed files, and the locality,
// clustering and volume of edits within changed files.
package corpus

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
)

// File is one document in a collection version.
type File struct {
	Path string
	Data []byte
}

// Tree is one version of a collection.
type Tree struct {
	Files []File
}

// Map returns the tree as a path-keyed map (data not copied).
func (t *Tree) Map() map[string][]byte {
	m := make(map[string][]byte, len(t.Files))
	for _, f := range t.Files {
		m[f.Path] = f.Data
	}
	return m
}

// TotalBytes reports the total content size.
func (t *Tree) TotalBytes() int {
	n := 0
	for _, f := range t.Files {
		n += len(f.Data)
	}
	return n
}

// identifiers and keywords used to synthesize source-like text.
var srcWords = []string{
	"static", "int", "char", "void", "struct", "return", "if", "else", "for",
	"while", "switch", "case", "break", "const", "unsigned", "long", "double",
	"sizeof", "typedef", "extern", "register", "buffer", "length", "offset",
	"result", "status", "index", "count", "node", "next", "prev", "head",
	"tail", "alloc", "free", "init", "parse", "emit", "token", "symbol",
	"value", "error", "flags", "state", "table", "entry", "block", "chunk",
}

// sourceLine emits one synthetic line of code.
func sourceLine(rng *rand.Rand, buf *bytes.Buffer, indent int) {
	for i := 0; i < indent; i++ {
		buf.WriteByte('\t')
	}
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(' ')
		}
		w := srcWords[rng.Intn(len(srcWords))]
		buf.WriteString(w)
		if rng.Intn(5) == 0 {
			fmt.Fprintf(buf, "_%d", rng.Intn(100))
		}
	}
	switch rng.Intn(4) {
	case 0:
		buf.WriteString(" {")
	case 1:
		buf.WriteString(";")
	default:
		buf.WriteString("();")
	}
	buf.WriteByte('\n')
}

// SourceText generates n bytes of source-code-like text.
func SourceText(rng *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	indent := 0
	for buf.Len() < n {
		sourceLine(rng, &buf, indent)
		switch rng.Intn(6) {
		case 0:
			if indent < 4 {
				indent++
			}
		case 1:
			if indent > 0 {
				indent--
			}
		}
	}
	return buf.Bytes()[:n]
}

// RandomText generates n bytes of high-entropy data (for adversarial tests).
func RandomText(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// EditModel describes how a changed file differs from its previous version:
// a number of localized "bursts", each a cluster of line-level edits — the
// change pattern the paper identifies as what makes synchronization work.
type EditModel struct {
	// Bursts is the expected number of edit clusters per changed file
	// (scaled with file size: per 32 KB).
	BurstsPer32KB float64
	// BurstEdits is the mean number of individual edits inside a burst.
	BurstEdits int
	// EditSize is the mean size in bytes of one insert/delete/replace.
	EditSize int
	// BurstSpread is the byte range a burst's edits fall within.
	BurstSpread int
}

// Apply derives a new version of data under the model.
func (em EditModel) Apply(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	nBursts := poisson(rng, em.BurstsPer32KB*float64(len(data))/(32*1024))
	if nBursts == 0 {
		nBursts = 1
	}
	for b := 0; b < nBursts; b++ {
		if len(out) == 0 {
			out = append(out, SourceText(rng, em.EditSize*em.BurstEdits)...)
			continue
		}
		center := rng.Intn(len(out))
		edits := 1 + poisson(rng, float64(em.BurstEdits-1))
		for e := 0; e < edits; e++ {
			if len(out) == 0 {
				break
			}
			pos := center + rng.Intn(2*em.BurstSpread+1) - em.BurstSpread
			if pos < 0 {
				pos = 0
			}
			if pos > len(out) {
				pos = len(out)
			}
			size := 1 + poisson(rng, float64(em.EditSize-1))
			switch rng.Intn(3) {
			case 0: // insert
				ins := SourceText(rng, size)
				out = append(out[:pos], append(ins, out[pos:]...)...)
			case 1: // delete
				end := pos + size
				if end > len(out) {
					end = len(out)
				}
				out = append(out[:pos], out[end:]...)
			default: // replace
				end := pos + size
				if end > len(out) {
					end = len(out)
				}
				repl := SourceText(rng, end-pos)
				copy(out[pos:end], repl)
			}
		}
	}
	return out
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; lambdas here are small.
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// SourceTreeProfile parameterizes a versioned source-tree corpus.
type SourceTreeProfile struct {
	Name      string
	Files     int
	MeanSize  int     // mean file size in bytes
	SizeSigma float64 // log-normal sigma of sizes
	// Version-2 derivation:
	ChangedFraction float64
	NewFraction     float64
	DeletedFraction float64
	Edits           EditModel
}

// GCCProfile approximates the gcc 2.7.0→2.7.1 pair: a point release with
// many files untouched and small clustered patches elsewhere.
// Scale multiplies file count and sizes (1.0 ≈ a few-MB corpus; experiments
// pass larger scales for full runs).
func GCCProfile(scale float64) SourceTreeProfile {
	return SourceTreeProfile{
		Name:            "gcc",
		Files:           max(4, int(120*scale)),
		MeanSize:        24 * 1024,
		SizeSigma:       1.0,
		ChangedFraction: 0.35,
		NewFraction:     0.02,
		DeletedFraction: 0.01,
		Edits:           EditModel{BurstsPer32KB: 2.0, BurstEdits: 4, EditSize: 40, BurstSpread: 300},
	}
}

// EmacsProfile approximates emacs 19.28→19.29: a bigger minor release with
// more files changed and heavier edits.
func EmacsProfile(scale float64) SourceTreeProfile {
	return SourceTreeProfile{
		Name:            "emacs",
		Files:           max(4, int(150*scale)),
		MeanSize:        20 * 1024,
		SizeSigma:       1.1,
		ChangedFraction: 0.55,
		NewFraction:     0.05,
		DeletedFraction: 0.02,
		Edits:           EditModel{BurstsPer32KB: 3.5, BurstEdits: 6, EditSize: 60, BurstSpread: 600},
	}
}

// Generate produces the two versions of the corpus.
func (p SourceTreeProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1 = &Tree{}
	v2 = &Tree{}
	for i := 0; i < p.Files; i++ {
		size := int(float64(p.MeanSize) * math.Exp(p.SizeSigma*rng.NormFloat64()-p.SizeSigma*p.SizeSigma/2))
		if size < 64 {
			size = 64
		}
		path := fmt.Sprintf("%s/src/file_%04d.c", p.Name, i)
		data := SourceText(rng, size)
		v1.Files = append(v1.Files, File{path, data})
		switch {
		case rng.Float64() < p.DeletedFraction:
			// dropped from v2
		case rng.Float64() < p.ChangedFraction:
			v2.Files = append(v2.Files, File{path, p.Edits.Apply(rng, data)})
		default:
			v2.Files = append(v2.Files, File{path, data})
		}
	}
	nNew := int(float64(p.Files) * p.NewFraction)
	for i := 0; i < nNew; i++ {
		size := int(float64(p.MeanSize) * math.Exp(p.SizeSigma*rng.NormFloat64()))
		if size < 64 {
			size = 64
		}
		path := fmt.Sprintf("%s/src/new_%04d.c", p.Name, i)
		v2.Files = append(v2.Files, File{path, SourceText(rng, size)})
	}
	return v1, v2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LogAppendProfile models append-mostly files (logs, journals): version 2
// is version 1 plus appended records, with an occasional small in-place
// touch-up (a rotated header, a rewritten summary line) — the classic
// synchronization-friendly workload.
type LogAppendProfile struct {
	Files        int
	MeanSize     int
	AppendFrac   float64 // appended bytes as a fraction of the old size
	TouchupProb  float64 // probability a file also gets one in-place edit
	TouchupBytes int
}

// DefaultLogAppendProfile returns a log-corpus profile at the given scale.
func DefaultLogAppendProfile(scale float64) LogAppendProfile {
	return LogAppendProfile{
		Files:        max(2, int(40*scale)),
		MeanSize:     64 * 1024,
		AppendFrac:   0.08,
		TouchupProb:  0.2,
		TouchupBytes: 40,
	}
}

// Generate produces the two versions of an append-mostly corpus.
func (p LogAppendProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		path := fmt.Sprintf("logs/service_%03d.log", i)
		var buf bytes.Buffer
		writeLogLines(rng, &buf, size)
		old := append([]byte(nil), buf.Bytes()...)
		v1.Files = append(v1.Files, File{path, old})

		writeLogLines(rng, &buf, buf.Len()+int(float64(size)*p.AppendFrac))
		cur := append([]byte(nil), buf.Bytes()...)
		if rng.Float64() < p.TouchupProb && len(cur) > p.TouchupBytes {
			pos := rng.Intn(len(cur) - p.TouchupBytes)
			copy(cur[pos:], SourceText(rng, p.TouchupBytes))
		}
		v2.Files = append(v2.Files, File{path, cur})
	}
	return v1, v2
}

// writeLogLines appends timestamped log-like lines until buf reaches size.
func writeLogLines(rng *rand.Rand, buf *bytes.Buffer, size int) {
	levels := []string{"INFO", "WARN", "DEBUG", "ERROR"}
	for buf.Len() < size {
		fmt.Fprintf(buf, "2026-%02d-%02dT%02d:%02d:%02d %s %s id=%d\n",
			1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60),
			levels[rng.Intn(len(levels))],
			srcWords[rng.Intn(len(srcWords))], rng.Intn(1<<20))
	}
}

// RenameProfile models a refactoring release: most files survive untouched,
// a slice of the tree is moved to new paths verbatim (pure renames), another
// slice is moved and lightly edited, and a few files change in place. The
// workload where path-keyed change detection pays the worst-case price and
// cross-file matching recovers almost all of it.
type RenameProfile struct {
	Name     string
	Files    int
	MeanSize int
	// RenamedFraction of files move to a new path with identical content;
	// MovedEditedFraction move and also receive Edits.
	RenamedFraction     float64
	MovedEditedFraction float64
	ChangedFraction     float64 // edited in place
	Edits               EditModel
}

// DefaultRenameProfile returns a rename-heavy corpus at the given scale:
// ~20% pure renames, ~10% moved-and-edited, ~5% edited in place.
func DefaultRenameProfile(scale float64) RenameProfile {
	return RenameProfile{
		Name:                "rename",
		Files:               max(4, int(100*scale)),
		MeanSize:            16 * 1024,
		RenamedFraction:     0.20,
		MovedEditedFraction: 0.10,
		ChangedFraction:     0.05,
		Edits:               EditModel{BurstsPer32KB: 2.0, BurstEdits: 4, EditSize: 40, BurstSpread: 300},
	}
}

// Generate produces the two versions of the rename corpus.
func (p RenameProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		path := fmt.Sprintf("%s/pkg_%02d/file_%04d.c", p.Name, i%13, i)
		data := SourceText(rng, size)
		v1.Files = append(v1.Files, File{path, data})
		r := rng.Float64()
		switch {
		case r < p.RenamedFraction:
			moved := fmt.Sprintf("%s/newpkg_%02d/file_%04d.c", p.Name, i%13, i)
			v2.Files = append(v2.Files, File{moved, data})
		case r < p.RenamedFraction+p.MovedEditedFraction:
			moved := fmt.Sprintf("%s/newpkg_%02d/file_%04d.c", p.Name, i%13, i)
			v2.Files = append(v2.Files, File{moved, p.Edits.Apply(rng, data)})
		case r < p.RenamedFraction+p.MovedEditedFraction+p.ChangedFraction:
			v2.Files = append(v2.Files, File{path, p.Edits.Apply(rng, data)})
		default:
			v2.Files = append(v2.Files, File{path, data})
		}
	}
	return v1, v2
}

// DeepTreeProfile models a deeply nested directory hierarchy (monorepos,
// vendored dependency trees): many small files under long paths, with a thin
// scattering of edits — the shape that stresses manifest size and merkle
// depth rather than per-file transfer.
type DeepTreeProfile struct {
	Name            string
	Files           int
	MeanSize        int
	Depth           int // directory nesting below the root
	ChangedFraction float64
	Edits           EditModel
}

// DefaultDeepTreeProfile returns a deep-tree corpus at the given scale.
func DefaultDeepTreeProfile(scale float64) DeepTreeProfile {
	return DeepTreeProfile{
		Name:            "deep",
		Files:           max(8, int(400*scale)),
		MeanSize:        2 * 1024,
		Depth:           6,
		ChangedFraction: 0.02,
		Edits:           EditModel{BurstsPer32KB: 2.0, BurstEdits: 3, EditSize: 30, BurstSpread: 200},
	}
}

// Generate produces the two versions of the deep-tree corpus.
func (p DeepTreeProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := 64 + rng.Intn(2*p.MeanSize)
		dir := p.Name
		for d := 0; d < p.Depth; d++ {
			dir = fmt.Sprintf("%s/d%02d", dir, (i>>uint(2*d))%7)
		}
		path := fmt.Sprintf("%s/leaf_%05d.txt", dir, i)
		data := SourceText(rng, size)
		v1.Files = append(v1.Files, File{path, data})
		if rng.Float64() < p.ChangedFraction {
			v2.Files = append(v2.Files, File{path, p.Edits.Apply(rng, data)})
		} else {
			v2.Files = append(v2.Files, File{path, data})
		}
	}
	return v1, v2
}
