package corpus

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// WebProfile parameterizes the web-page recrawl corpus (paper §6.3: ten
// thousand pages, ~10 KB each, recrawled nightly; some pages never change,
// others change only slightly, a few churn heavily).
type WebProfile struct {
	Pages    int
	MeanSize int
	// PStatic is the fraction of pages that never change.
	PStatic float64
	// PDaily is the per-night change probability of a non-static page.
	PDaily float64
	// PHeavy is the fraction of changing pages with heavy nightly churn.
	PHeavy float64
	Edits  EditModel
	// HeavyEdits applies to heavy-churn pages.
	HeavyEdits EditModel
}

// DefaultWebProfile returns the paper-shaped profile at the given scale
// (scale 1.0 ≈ 1000 pages × ~5 KB; the paper's full scale is 10).
func DefaultWebProfile(scale float64) WebProfile {
	return WebProfile{
		Pages:      maxInt(8, int(1000*scale)),
		MeanSize:   5 * 1024,
		PStatic:    0.35,
		PDaily:     0.30,
		PHeavy:     0.08,
		Edits:      EditModel{BurstsPer32KB: 4.0, BurstEdits: 3, EditSize: 30, BurstSpread: 120},
		HeavyEdits: EditModel{BurstsPer32KB: 16.0, BurstEdits: 8, EditSize: 120, BurstSpread: 1200},
	}
}

// WebCollection is a lazily-evolving nightly recrawl. Version(day) replays
// each page's deterministic update chain up to that night. Safe for
// concurrent use (the page cache is guarded).
type WebCollection struct {
	profile WebProfile
	seed    int64
	mu      sync.Mutex
	pages   []webPage
}

type webPage struct {
	path   string
	static bool
	heavy  bool
	seed   int64
	// cache of the last materialized (day, data)
	cachedDay  int
	cachedData []byte
}

// NewWebCollection builds the page population.
func NewWebCollection(p WebProfile, seed int64) *WebCollection {
	rng := rand.New(rand.NewSource(seed))
	wc := &WebCollection{profile: p, seed: seed}
	for i := 0; i < p.Pages; i++ {
		wc.pages = append(wc.pages, webPage{
			path:      fmt.Sprintf("web/page_%05d.html", i),
			static:    rng.Float64() < p.PStatic,
			heavy:     rng.Float64() < p.PHeavy,
			seed:      rng.Int63(),
			cachedDay: -1,
		})
	}
	return wc
}

// htmlPage generates the day-0 content of a page.
func htmlPage(rng *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	buf.WriteString("<html><head><title>")
	buf.Write(SourceText(rng, 24))
	buf.WriteString("</title></head>\n<body>\n")
	for buf.Len() < n {
		switch rng.Intn(4) {
		case 0:
			buf.WriteString("<h2>")
			buf.Write(SourceText(rng, 16+rng.Intn(32)))
			buf.WriteString("</h2>\n")
		case 1:
			buf.WriteString("<a href=\"/")
			fmt.Fprintf(&buf, "item%d", rng.Intn(10000))
			buf.WriteString("\">")
			buf.Write(SourceText(rng, 12+rng.Intn(20)))
			buf.WriteString("</a>\n")
		default:
			buf.WriteString("<p>")
			buf.Write(SourceText(rng, 80+rng.Intn(240)))
			buf.WriteString("</p>\n")
		}
	}
	buf.WriteString("</body></html>\n")
	return buf.Bytes()
}

// materialize returns the page content as of the given night, replaying the
// chain from the most recent cached day.
func (wc *WebCollection) materialize(pi, day int) []byte {
	pg := &wc.pages[pi]
	startDay := 0
	var data []byte
	if pg.cachedDay >= 0 && pg.cachedDay <= day {
		startDay = pg.cachedDay
		data = pg.cachedData
	} else {
		rng := rand.New(rand.NewSource(pg.seed))
		size := int(float64(wc.profile.MeanSize) * math.Exp(0.8*rng.NormFloat64()))
		if size < 256 {
			size = 256
		}
		data = htmlPage(rng, size)
	}
	if pg.static {
		pg.cachedDay, pg.cachedData = day, data
		return data
	}
	for d := startDay + 1; d <= day; d++ {
		rng := rand.New(rand.NewSource(pg.seed ^ int64(d)*0x4E3779B97F4A7C15))
		if rng.Float64() >= wc.profile.PDaily {
			continue
		}
		em := wc.profile.Edits
		if pg.heavy {
			em = wc.profile.HeavyEdits
		}
		data = em.Apply(rng, data)
		// Every page that changes also gets its volatile header refreshed
		// (timestamps, counters — the "changes only slightly" pattern).
		stamp := []byte(fmt.Sprintf("<!-- generated night %d, build %d -->\n", d, rng.Intn(1<<20)))
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			if bytes.HasPrefix(data[i+1:], []byte("<!-- generated")) {
				if j := bytes.IndexByte(data[i+1:], '\n'); j >= 0 {
					data = append(data[:i+1], append(stamp, data[i+1+j+1:]...)...)
				}
			} else {
				data = append(data[:i+1], append(stamp, data[i+1:]...)...)
			}
		}
	}
	pg.cachedDay, pg.cachedData = day, append([]byte(nil), data...)
	return pg.cachedData
}

// Version materializes the whole collection as of the given night.
// Days must be requested in non-decreasing order for the cache to help;
// arbitrary order is still correct, just slower.
func (wc *WebCollection) Version(day int) *Tree {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	t := &Tree{Files: make([]File, 0, len(wc.pages))}
	for i := range wc.pages {
		t.Files = append(t.Files, File{wc.pages[i].path, wc.materialize(i, day)})
	}
	return t
}

// Pages reports the page count.
func (wc *WebCollection) Pages() int { return len(wc.pages) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
