package corpus

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"msync/internal/md4"
)

func TestSourceTextDeterministic(t *testing.T) {
	a := SourceText(rand.New(rand.NewSource(1)), 10000)
	b := SourceText(rand.New(rand.NewSource(1)), 10000)
	if !bytes.Equal(a, b) {
		t.Fatal("SourceText not deterministic")
	}
	if len(a) != 10000 {
		t.Fatalf("len = %d", len(a))
	}
}

func TestSourceTextIsCompressibleText(t *testing.T) {
	data := SourceText(rand.New(rand.NewSource(2)), 50000)
	// Printable-ish and newline-structured.
	lines := bytes.Count(data, []byte("\n"))
	if lines < 500 {
		t.Fatalf("only %d lines in 50k text", lines)
	}
	for _, b := range data {
		if b != '\n' && b != '\t' && (b < 32 || b > 126) {
			t.Fatalf("unexpected byte %d", b)
		}
	}
}

func TestEditModelChangesAreLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := SourceText(rng, 100_000)
	em := EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 40, BurstSpread: 300}
	edited := em.Apply(rng, orig)
	if bytes.Equal(orig, edited) {
		t.Fatal("edit model produced no change")
	}
	// The edit volume must be a small fraction of the file.
	diff := int(math.Abs(float64(len(edited) - len(orig))))
	if diff > len(orig)/5 {
		t.Fatalf("size changed by %d of %d", diff, len(orig))
	}
	// Most of the content survives: count common prefix + suffix as a cheap
	// locality proxy, then require a large shared substring fraction via
	// 64-byte block fingerprints.
	blocks := map[[md4.Size]byte]bool{}
	for i := 0; i+64 <= len(orig); i += 64 {
		blocks[md4.Sum(orig[i:i+64])] = true
	}
	shared := 0
	total := 0
	for i := 0; i+64 <= len(edited); i += 64 {
		total++
		if blocks[md4.Sum(edited[i:i+64])] {
			shared++
		}
	}
	_ = shared // alignment shifts make grid-block sharing weak; just ensure totals sane
	if total == 0 {
		t.Fatal("no blocks")
	}
}

func TestSourceTreeProfiles(t *testing.T) {
	for _, p := range []SourceTreeProfile{GCCProfile(0.1), EmacsProfile(0.1)} {
		v1, v2 := p.Generate(11)
		if len(v1.Files) == 0 || len(v2.Files) == 0 {
			t.Fatalf("%s: empty corpus", p.Name)
		}
		// Determinism.
		w1, w2 := p.Generate(11)
		if v1.TotalBytes() != w1.TotalBytes() || v2.TotalBytes() != w2.TotalBytes() {
			t.Fatalf("%s: not deterministic", p.Name)
		}
		// Some files unchanged, some changed.
		m1 := v1.Map()
		changed, unchanged := 0, 0
		for _, f := range v2.Files {
			if old, ok := m1[f.Path]; ok {
				if bytes.Equal(old, f.Data) {
					unchanged++
				} else {
					changed++
				}
			}
		}
		if changed == 0 || unchanged == 0 {
			t.Fatalf("%s: changed=%d unchanged=%d", p.Name, changed, unchanged)
		}
		t.Logf("%s: %d files, %d changed, %d unchanged, %d KB",
			p.Name, len(v2.Files), changed, unchanged, v2.TotalBytes()/1024)
	}
}

func TestTreeMapAndTotal(t *testing.T) {
	tr := &Tree{Files: []File{{"a", []byte("xy")}, {"b", []byte("z")}}}
	if tr.TotalBytes() != 3 {
		t.Fatal("TotalBytes")
	}
	m := tr.Map()
	if string(m["a"]) != "xy" || string(m["b"]) != "z" {
		t.Fatal("Map")
	}
}

func TestWebCollectionBasics(t *testing.T) {
	wc := NewWebCollection(DefaultWebProfile(0.05), 21)
	day0 := wc.Version(0)
	day1 := wc.Version(1)
	day5 := wc.Version(5)

	if len(day0.Files) != wc.Pages() {
		t.Fatal("page count")
	}
	m0, m1, m5 := day0.Map(), day1.Map(), day5.Map()
	changed1, changed5 := 0, 0
	for path, base := range m0 {
		if !bytes.Equal(base, m1[path]) {
			changed1++
		}
		if !bytes.Equal(base, m5[path]) {
			changed5++
		}
	}
	if changed1 == 0 {
		t.Fatal("no pages changed after one night")
	}
	if changed5 < changed1 {
		t.Fatalf("changes must accumulate: day1=%d day5=%d", changed1, changed5)
	}
	if changed5 == len(m0) {
		t.Fatal("static pages must exist")
	}
	t.Logf("pages=%d changed@1=%d changed@5=%d", len(m0), changed1, changed5)
}

// TestWebCollectionCacheConsistency: materializing a day via the cache path
// must equal regenerating from scratch.
func TestWebCollectionCacheConsistency(t *testing.T) {
	p := DefaultWebProfile(0.02)
	a := NewWebCollection(p, 33)
	// Incremental: 0 then 3.
	a.Version(0)
	incr := a.Version(3).Map()
	// Fresh: straight to 3.
	b := NewWebCollection(p, 33)
	fresh := b.Version(3).Map()
	if len(incr) != len(fresh) {
		t.Fatal("page count mismatch")
	}
	for path, data := range fresh {
		if !bytes.Equal(incr[path], data) {
			t.Fatalf("cache inconsistency for %s", path)
		}
	}
	// Going backwards is also correct (regenerates).
	back := a.Version(1).Map()
	c := NewWebCollection(p, 33)
	want := c.Version(1).Map()
	for path, data := range want {
		if !bytes.Equal(back[path], data) {
			t.Fatalf("backward materialization wrong for %s", path)
		}
	}
}

func TestWebPagesLookLikeHTML(t *testing.T) {
	wc := NewWebCollection(DefaultWebProfile(0.01), 44)
	for _, f := range wc.Version(0).Files {
		if !bytes.HasPrefix(f.Data, []byte("<html>")) {
			t.Fatalf("%s does not start with <html>", f.Path)
		}
		if !bytes.Contains(f.Data, []byte("</html>")) {
			t.Fatalf("%s unterminated", f.Path)
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if poisson(rng, 0) != 0 {
		t.Fatal("lambda 0")
	}
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3.0)
	}
	mean := float64(sum) / n
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("poisson mean %.2f, want ~3", mean)
	}
}

func TestRandomText(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := RandomText(rng, 1000)
	if len(data) != 1000 {
		t.Fatal("length")
	}
	// High-entropy check: many distinct bytes.
	seen := map[byte]bool{}
	for _, b := range data {
		seen[b] = true
	}
	if len(seen) < 200 {
		t.Fatalf("only %d distinct bytes", len(seen))
	}
}

func TestLogAppendProfile(t *testing.T) {
	p := DefaultLogAppendProfile(0.3)
	v1, v2 := p.Generate(9)
	if len(v1.Files) != len(v2.Files) || len(v1.Files) == 0 {
		t.Fatalf("file counts: %d vs %d", len(v1.Files), len(v2.Files))
	}
	m1 := v1.Map()
	grew, prefixed := 0, 0
	for _, f := range v2.Files {
		old := m1[f.Path]
		if len(f.Data) <= len(old) {
			t.Fatalf("%s did not grow (%d -> %d)", f.Path, len(old), len(f.Data))
		}
		grew++
		if bytes.HasPrefix(f.Data, old) {
			prefixed++
		}
	}
	// Most files are pure appends (prefix-preserving); touch-ups break a few.
	if prefixed < grew/2 {
		t.Fatalf("only %d/%d files are prefix-preserving appends", prefixed, grew)
	}
	// Determinism.
	w1, _ := p.Generate(9)
	if w1.TotalBytes() != v1.TotalBytes() {
		t.Fatal("not deterministic")
	}
}

func TestRenameProfile(t *testing.T) {
	p := DefaultRenameProfile(1.0)
	v1, v2 := p.Generate(3)
	w1, w2 := p.Generate(3)
	if v1.TotalBytes() != w1.TotalBytes() || v2.TotalBytes() != w2.TotalBytes() {
		t.Fatal("rename profile not deterministic")
	}
	m1 := v1.Map()
	byContent := make(map[string]string, len(m1)) // content → v1 path
	for _, f := range v1.Files {
		byContent[string(f.Data)] = f.Path
	}
	renamed, movedEdited, inPlace := 0, 0, 0
	for _, f := range v2.Files {
		if _, samePath := m1[f.Path]; samePath {
			if !bytes.Equal(m1[f.Path], f.Data) {
				inPlace++
			}
			continue
		}
		if src, ok := byContent[string(f.Data)]; ok && src != f.Path {
			renamed++
		} else {
			movedEdited++
		}
	}
	if renamed == 0 || movedEdited == 0 || inPlace == 0 {
		t.Fatalf("renamed=%d movedEdited=%d inPlace=%d: profile must produce all three",
			renamed, movedEdited, inPlace)
	}
	t.Logf("rename corpus: %d renamed, %d moved+edited, %d edited in place of %d files",
		renamed, movedEdited, inPlace, len(v2.Files))
}

func TestDeepTreeProfile(t *testing.T) {
	p := DefaultDeepTreeProfile(1.0)
	v1, v2 := p.Generate(5)
	if len(v1.Files) != len(v2.Files) {
		t.Fatalf("deep tree: %d vs %d files", len(v1.Files), len(v2.Files))
	}
	maxDepth := 0
	for _, f := range v1.Files {
		d := strings.Count(f.Path, "/")
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < p.Depth {
		t.Fatalf("deepest path has %d segments, profile depth %d", maxDepth, p.Depth)
	}
	m1 := v1.Map()
	changed := 0
	for _, f := range v2.Files {
		if !bytes.Equal(m1[f.Path], f.Data) {
			changed++
		}
	}
	if changed == 0 || changed > len(v2.Files)/4 {
		t.Fatalf("deep tree changed %d of %d files; want a thin scattering", changed, len(v2.Files))
	}
}
