package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"
)

func TestPipeReadDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline fired after %v", el)
	}
	// Clearing the deadline makes the end usable again.
	b.SetReadDeadline(time.Time{})
	a.Write([]byte("x"))
	if _, err := b.Read(buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestPipeDeadlineWakesBlockedRead(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read block
	b.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want deadline error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read was not woken by the deadline")
	}
}

func TestSessionContextCancelUnblocksRead(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSession(ctx, b, 0)
	defer s.Release()
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := s.Read(buf)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the read")
	}
}

func TestSessionRoundTimeout(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	s := NewSession(context.Background(), b, 40*time.Millisecond)
	defer s.Release()
	start := time.Now()
	buf := make([]byte, 1)
	_, err := s.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("round timeout fired after %v", el)
	}
	// Writes from the healthy peer after the timeout are a fresh round.
	a.Write([]byte("y"))
	if _, err := s.Read(buf); err != nil || buf[0] != 'y' {
		t.Fatalf("next round read: %v %q", err, buf)
	}
}

func TestSessionPlainReadWriterChecksContext(t *testing.T) {
	// A bare bytes-less ReadWriter (no deadline support): the session still
	// refuses operations once the context is done.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var rw plainRW
	s := NewSession(ctx, &rw, time.Second)
	defer s.Release()
	if _, err := s.Write([]byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context error, got %v", err)
	}
}

type plainRW struct{}

func (plainRW) Read(p []byte) (int, error)  { return 0, io.EOF }
func (plainRW) Write(p []byte) (int, error) { return len(p), nil }

func TestFaultConnSeverMidFrame(t *testing.T) {
	a, b := Pipe()
	f := NewFaultConn(a).SeverAfter(5)
	if n, err := f.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("pre-trigger write: %d %v", n, err)
	}
	n, err := f.Write([]byte("defgh"))
	if n != 2 || !errors.Is(err, ErrSevered) {
		t.Fatalf("severing write: n=%d err=%v", n, err)
	}
	// The peer drains the 5 delivered bytes, then hits EOF.
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "abcde" {
		t.Fatalf("prefix: %q %v", buf, err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after sever, got %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrSevered) {
		t.Fatalf("write after sever: %v", err)
	}
}

func TestFaultConnDropStallsPeer(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaultConn(a).DropAfter(4)
	if n, err := f.Write([]byte("123456")); n != 6 || err != nil {
		t.Fatalf("dropping write must report success: %d %v", n, err)
	}
	if n, err := f.Write([]byte("789")); n != 3 || err != nil {
		t.Fatalf("fully dropped write must report success: %d %v", n, err)
	}
	if f.Written() != 9 {
		t.Fatalf("Written = %d, want 9", f.Written())
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "1234" {
		t.Fatalf("delivered prefix: %q %v", buf, err)
	}
	// Nothing further arrives: the peer's read deadline fires.
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := b.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("peer should stall then time out, got %v", err)
	}
}

func TestFaultConnDelayUsesClock(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	clock := NewFakeClock(time.Unix(0, 0))
	f := NewFaultConn(a).DelayWrites(50*time.Millisecond, clock)
	f.Write([]byte("x"))
	f.Write([]byte("y"))
	if got := clock.Slept(); len(got) != 2 || got[0] != 50*time.Millisecond {
		t.Fatalf("delays not routed through clock: %v", got)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "xy" {
		t.Fatalf("delayed writes lost: %q %v", buf, err)
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	p := BackoffPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Multiplier: 2}
	for i, want := range []time.Duration{100, 200, 400, 400} {
		if got := p.Delay(i+1, nil); got != want*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	p := BackoffPolicy{BaseDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	var first []time.Duration
	for i := 1; i <= 6; i++ {
		d := p.Delay(i, rng)
		nominal := time.Duration(float64(100*time.Millisecond) * pow2(i-1))
		lo, hi := nominal/2, nominal+nominal/2
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside jitter bounds [%v, %v]", i, d, lo, hi)
		}
		first = append(first, d)
	}
	// Same seed → identical sequence.
	rng2 := rand.New(rand.NewSource(7))
	for i := 1; i <= 6; i++ {
		if d := p.Delay(i, rng2); d != first[i-1] {
			t.Fatalf("seeded jitter not deterministic at attempt %d", i)
		}
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

func TestRetryBoundedAttemptsWithJitter(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := BackoffPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5, Seed: 42}
	calls := 0
	err := Retry(context.Background(), clock, p, func(n int) error {
		calls++
		if n != calls {
			t.Fatalf("attempt numbering: got %d, want %d", n, calls)
		}
		return fmt.Errorf("attempt %d failed", n)
	})
	if err == nil || calls != 4 {
		t.Fatalf("want 4 failed attempts, got calls=%d err=%v", calls, err)
	}
	slept := clock.Slept()
	if len(slept) != 3 {
		t.Fatalf("want 3 backoff sleeps, got %v", slept)
	}
	for i, d := range slept {
		nominal := time.Duration(float64(100*time.Millisecond) * pow2(i))
		if d < nominal/2 || d > nominal+nominal/2 {
			t.Fatalf("sleep %d = %v outside jitter bounds around %v", i, d, nominal)
		}
	}
	// Deterministic: the same seed reproduces the same schedule.
	clock2 := NewFakeClock(time.Unix(0, 0))
	Retry(context.Background(), clock2, p, func(int) error { return errors.New("x") })
	s2 := clock2.Slept()
	for i := range slept {
		if slept[i] != s2[i] {
			t.Fatalf("seeded retry schedule not reproducible: %v vs %v", slept, s2)
		}
	}
}

func TestRetrySuccessAndPermanent(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := BackoffPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}
	calls := 0
	err := Retry(context.Background(), clock, p, func(n int) error {
		calls++
		if n < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success on attempt 3, got calls=%d err=%v", calls, err)
	}

	boom := errors.New("bad config")
	calls = 0
	err = Retry(context.Background(), clock, p, func(int) error {
		calls++
		return Permanent(boom)
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("permanent error must stop retries: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := BackoffPolicy{MaxAttempts: 10, BaseDelay: time.Hour}
	calls := 0
	err := Retry(ctx, SystemClock, p, func(int) error {
		calls++
		cancel() // cancel during the first attempt; the sleep must abort
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("want cancellation after 1 attempt, got calls=%d err=%v", calls, err)
	}
}
