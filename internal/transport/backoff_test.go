package transport

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestDelayHighAttemptsNeverOverflow pins the overflow fix: with MaxDelay 0
// (uncapped) the exponential growth used to push the float64 product past
// MaxInt64 and wrap time.Duration negative around attempt 40, turning the
// backoff into a hot retry loop. Every attempt number must now yield a
// positive, saturated delay.
func TestDelayHighAttemptsNeverOverflow(t *testing.T) {
	policies := map[string]BackoffPolicy{
		"uncapped":        {BaseDelay: time.Second, Multiplier: 2},
		"uncapped-jitter": {BaseDelay: time.Second, Multiplier: 2, Jitter: 0.5, Seed: 7},
		"huge-multiplier": {BaseDelay: time.Second, Multiplier: 1e12},
		"capped":          {BaseDelay: time.Second, Multiplier: 2, MaxDelay: 5 * time.Second},
	}
	for name, p := range policies {
		var rng *rand.Rand
		if p.Seed != 0 {
			rng = rand.New(rand.NewSource(p.Seed)) //nolint:gosec // deterministic jitter
		}
		for _, attempt := range []int{40, 41, 63, 64, 65, 100, 1_000, 1 << 20} {
			d := p.Delay(attempt, rng)
			if d <= 0 {
				t.Fatalf("%s: Delay(%d) = %v, overflowed to non-positive", name, attempt, d)
			}
			if p.MaxDelay > 0 {
				// Jitterless capped policies must sit exactly at the cap.
				if p.Jitter == 0 && d != p.MaxDelay {
					t.Fatalf("%s: Delay(%d) = %v, want cap %v", name, attempt, d, p.MaxDelay)
				}
			}
		}
	}
}

// TestDelaySaturatesMonotonically: once the uncapped schedule hits the
// ceiling it stays there — later attempts never shrink the delay.
func TestDelaySaturatesMonotonically(t *testing.T) {
	p := BackoffPolicy{BaseDelay: time.Second, Multiplier: 2}
	var prev time.Duration
	for attempt := 1; attempt <= 200; attempt++ {
		d := p.Delay(attempt, nil)
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if prev < time.Duration(math.MaxInt64/4) {
		t.Fatalf("uncapped schedule saturated too low: %v", prev)
	}
}

// TestDelayEarlyAttemptsUnchanged: the fix must not disturb the normal
// schedule a real retry loop walks.
func TestDelayEarlyAttemptsUnchanged(t *testing.T) {
	p := BackoffPolicy{BaseDelay: 100 * time.Millisecond, Multiplier: 2, MaxDelay: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if d := p.Delay(i+1, nil); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, d, w)
		}
	}
	// Zero base stays zero (the "no delay" degenerate policy).
	zero := BackoffPolicy{Multiplier: 2}
	if d := zero.Delay(50, nil); d != 0 {
		t.Fatalf("zero-base Delay(50) = %v, want 0", d)
	}
}

// TestRetryAfterHintStretchesSchedule: a hint longer than the policy delay
// wins; a shorter one leaves the jittered schedule untouched.
func TestRetryAfterHintStretchesSchedule(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := BackoffPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Multiplier: 2}
	calls := 0
	err := Retry(context.Background(), clock, p, func(n int) error {
		calls++
		if n == 1 {
			return RetryAfterHint(errors.New("busy"), 500*time.Millisecond)
		}
		if n == 2 {
			return RetryAfterHint(errors.New("busy"), time.Millisecond)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry = %v after %d calls", err, calls)
	}
	slept := clock.Slept()
	if len(slept) != 2 {
		t.Fatalf("want 2 sleeps, got %v", slept)
	}
	if slept[0] != 500*time.Millisecond {
		t.Fatalf("hinted sleep = %v, want the 500ms hint", slept[0])
	}
	if slept[1] != 20*time.Millisecond {
		t.Fatalf("short hint sleep = %v, want the 20ms policy delay", slept[1])
	}
}

// TestRetryAfterHintNil: nil in, nil out.
func TestRetryAfterHintNil(t *testing.T) {
	if RetryAfterHint(nil, time.Second) != nil {
		t.Fatal("RetryAfterHint(nil) != nil")
	}
	// The wrapped cause stays inspectable.
	cause := errors.New("boom")
	if !errors.Is(RetryAfterHint(cause, time.Second), cause) {
		t.Fatal("hint wrapper hides the cause")
	}
}
