package transport

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestDelayHighAttemptsNeverOverflow pins the overflow fix: with MaxDelay 0
// (uncapped) the exponential growth used to push the float64 product past
// MaxInt64 and wrap time.Duration negative around attempt 40, turning the
// backoff into a hot retry loop. Every attempt number must now yield a
// positive, saturated delay.
func TestDelayHighAttemptsNeverOverflow(t *testing.T) {
	policies := map[string]BackoffPolicy{
		"uncapped":        {BaseDelay: time.Second, Multiplier: 2},
		"uncapped-jitter": {BaseDelay: time.Second, Multiplier: 2, Jitter: 0.5, Seed: 7},
		"huge-multiplier": {BaseDelay: time.Second, Multiplier: 1e12},
		"capped":          {BaseDelay: time.Second, Multiplier: 2, MaxDelay: 5 * time.Second},
	}
	for name, p := range policies {
		var rng *rand.Rand
		if p.Seed != 0 {
			rng = rand.New(rand.NewSource(p.Seed)) //nolint:gosec // deterministic jitter
		}
		for _, attempt := range []int{40, 41, 63, 64, 65, 100, 1_000, 1 << 20} {
			d := p.Delay(attempt, rng)
			if d <= 0 {
				t.Fatalf("%s: Delay(%d) = %v, overflowed to non-positive", name, attempt, d)
			}
			if p.MaxDelay > 0 {
				// Jitterless capped policies must sit exactly at the cap.
				if p.Jitter == 0 && d != p.MaxDelay {
					t.Fatalf("%s: Delay(%d) = %v, want cap %v", name, attempt, d, p.MaxDelay)
				}
			}
		}
	}
}

// TestDelaySaturatesMonotonically: once the uncapped schedule hits the
// ceiling it stays there — later attempts never shrink the delay.
func TestDelaySaturatesMonotonically(t *testing.T) {
	p := BackoffPolicy{BaseDelay: time.Second, Multiplier: 2}
	var prev time.Duration
	for attempt := 1; attempt <= 200; attempt++ {
		d := p.Delay(attempt, nil)
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if prev < time.Duration(math.MaxInt64/4) {
		t.Fatalf("uncapped schedule saturated too low: %v", prev)
	}
}

// TestDelayEarlyAttemptsUnchanged: the fix must not disturb the normal
// schedule a real retry loop walks.
func TestDelayEarlyAttemptsUnchanged(t *testing.T) {
	p := BackoffPolicy{BaseDelay: 100 * time.Millisecond, Multiplier: 2, MaxDelay: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if d := p.Delay(i+1, nil); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, d, w)
		}
	}
	// Zero base stays zero (the "no delay" degenerate policy).
	zero := BackoffPolicy{Multiplier: 2}
	if d := zero.Delay(50, nil); d != 0 {
		t.Fatalf("zero-base Delay(50) = %v, want 0", d)
	}
}
