package transport

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSevered is returned by writes to a FaultConn after its sever trigger
// fired.
var ErrSevered = errors.New("transport: connection severed")

// FaultConn wraps one end of an in-memory pipe and injects link failures for
// robustness tests. Triggers are expressed in cumulative bytes written
// through this end, so a fault can be placed precisely in the middle of a
// wire frame:
//
//   - SeverAfter: deliver the first n bytes, then close both ends — the peer
//     sees the prefix and then an unexpected EOF mid-frame;
//   - DropAfter: deliver the first n bytes, then silently discard the rest
//     while reporting success — the peer observes a stalled connection
//     (its read deadline, not an error, ends the session);
//   - DelayWrites: sleep before each write, simulating a slow link.
//
// Deadline methods are inherited from the embedded PipeEnd, so a FaultConn
// composes with Session round timeouts.
type FaultConn struct {
	*PipeEnd

	mu         sync.Mutex
	written    int
	severAfter int // -1 = disabled
	dropAfter  int // -1 = disabled
	delay      time.Duration
	clock      Clock
}

// NewFaultConn wraps p with no faults armed.
func NewFaultConn(p *PipeEnd) *FaultConn {
	return &FaultConn{PipeEnd: p, severAfter: -1, dropAfter: -1}
}

// SeverAfter arms an abrupt close of both ends once n total bytes have been
// written through this end.
func (f *FaultConn) SeverAfter(n int) *FaultConn {
	f.mu.Lock()
	f.severAfter = n
	f.mu.Unlock()
	return f
}

// DropAfter arms silent discarding of everything past the first n written
// bytes, making this end look stalled to the peer.
func (f *FaultConn) DropAfter(n int) *FaultConn {
	f.mu.Lock()
	f.dropAfter = n
	f.mu.Unlock()
	return f
}

// DelayWrites sleeps d on clock (nil = SystemClock) before every write.
func (f *FaultConn) DelayWrites(d time.Duration, clock Clock) *FaultConn {
	f.mu.Lock()
	f.delay = d
	f.clock = clock
	f.mu.Unlock()
	return f
}

// Write implements io.Writer, applying the armed faults in byte order.
func (f *FaultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	delay, clock := f.delay, f.clock
	f.mu.Unlock()
	if delay > 0 {
		if clock == nil {
			clock = SystemClock
		}
		_ = clock.Sleep(context.Background(), delay)
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	// Sever: deliver the allowed prefix, then cut the link.
	if f.severAfter >= 0 {
		if f.written >= f.severAfter {
			return 0, ErrSevered
		}
		allowed := f.severAfter - f.written
		if allowed >= len(p) {
			n, err := f.PipeEnd.Write(p)
			f.written += n
			return n, err
		}
		n, _ := f.PipeEnd.Write(p[:allowed])
		f.written += n
		f.PipeEnd.Close()
		return n, ErrSevered
	}

	// Drop: deliver the allowed prefix, pretend the rest was sent.
	if f.dropAfter >= 0 {
		if f.written >= f.dropAfter {
			f.written += len(p)
			return len(p), nil
		}
		allowed := f.dropAfter - f.written
		if allowed > len(p) {
			allowed = len(p)
		}
		if n, err := f.PipeEnd.Write(p[:allowed]); err != nil {
			f.written += n
			return n, err
		}
		f.written += len(p)
		return len(p), nil
	}

	n, err := f.PipeEnd.Write(p)
	f.written += n
	return n, err
}

// Written reports the cumulative bytes written through this end (including
// dropped bytes).
func (f *FaultConn) Written() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}
