package transport

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"msync/internal/stats"
)

func TestPipeBasic(t *testing.T) {
	a, b := Pipe()
	msg := []byte("hello across the pipe")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("mismatch")
	}
	// And the reverse direction.
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 4)
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Fatal("reverse mismatch")
	}
}

// TestPipeNeverBlocksOnWrite: unlike net.Pipe, large writes with no reader
// must complete (this is what makes single-goroutine protocol tests safe).
func TestPipeNeverBlocksOnWrite(t *testing.T) {
	a, b := Pipe()
	big := make([]byte, 1<<20)
	done := make(chan struct{})
	go func() {
		a.Write(big)
		a.Write(big)
		close(done)
	}()
	<-done // would deadlock with a synchronous pipe
	buf := make([]byte, 2<<20)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
}

func TestPipeBlockingRead(t *testing.T) {
	a, b := Pipe()
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
		got = buf
	}()
	a.Write([]byte("delay"))
	wg.Wait()
	if string(got) != "delay" {
		t.Fatalf("got %q", got)
	}
}

func TestPipeCloseDrainsThenEOF(t *testing.T) {
	a, b := Pipe()
	a.Write([]byte("leftover"))
	a.Close()
	buf := make([]byte, 8)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("buffered data lost: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Writing to the closed end errors.
	if _, err := a.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestPipeConcurrentTraffic(t *testing.T) {
	a, b := Pipe()
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	var count int
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for count < n {
			m, err := b.Read(buf)
			if err != nil {
				t.Error(err)
				return
			}
			count += m
		}
	}()
	wg.Wait()
	if count != n {
		t.Fatalf("read %d bytes, want %d", count, n)
	}
}

func TestFaultyEnd(t *testing.T) {
	a, b := Pipe()
	boom := errors.New("link died")
	f := NewFaultyEnd(a, 10, boom)
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Second write exceeds the budget: partial write then error.
	if _, err := f.Write(make([]byte, 8)); err != boom {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err := f.Write([]byte("x")); err != boom {
		t.Fatalf("budget exhausted should keep failing, got %v", err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("the 10 allowed bytes should be readable: %v", err)
	}
}

func TestMeter(t *testing.T) {
	a, b := Pipe()
	var costs stats.Costs
	m := NewMeter(a, &costs, stats.S2C)
	m.SetPhase(stats.PhaseMap)
	m.Write([]byte("12345"))
	m.SetPhase(stats.PhaseDelta)
	m.Write([]byte("123"))
	if m.Phase() != stats.PhaseDelta {
		t.Fatal("phase")
	}
	if costs.Bytes(stats.S2C, stats.PhaseMap) != 5 || costs.Bytes(stats.S2C, stats.PhaseDelta) != 3 {
		t.Fatalf("metering wrong: %+v", costs)
	}
	// Reads are not metered.
	buf := make([]byte, 8)
	io.ReadFull(b, buf)
	b.Write([]byte("xy"))
	io.ReadFull(m, buf[:2])
	if costs.Total() != 8 {
		t.Fatalf("reads were metered: total %d", costs.Total())
	}
}
