// Package transport provides the connections the protocol engines run over:
// an unbounded in-memory duplex pipe (for tests, benchmarks and examples) and
// byte-metering wrappers that feed the stats package.
package transport

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"msync/internal/stats"
)

// ErrClosed is returned by operations on a closed pipe end.
var ErrClosed = errors.New("transport: pipe closed")

// buffer is an unbounded FIFO byte queue with blocking, deadline-aware reads.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
	// rdeadline bounds blocking reads from this buffer; wdeadline is checked
	// (never waited on — writes don't block) by writes into it.
	rdeadline time.Time
	rtimer    *time.Timer
	wdeadline time.Time
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	if !b.wdeadline.IsZero() && !time.Now().Before(b.wdeadline) {
		return 0, os.ErrDeadlineExceeded
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed && !b.rexpired() {
		b.cond.Wait()
	}
	if b.rexpired() {
		return 0, os.ErrDeadlineExceeded
	}
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	if len(b.data) == 0 {
		b.data = nil // release the backing array
	}
	return n, nil
}

// rexpired reports whether the read deadline has passed (mu held).
func (b *buffer) rexpired() bool {
	return !b.rdeadline.IsZero() && !time.Now().Before(b.rdeadline)
}

// setReadDeadline installs t as the read deadline and arms a timer that wakes
// blocked readers when it fires. The zero time clears the deadline.
func (b *buffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rdeadline = t
	if b.rtimer != nil {
		b.rtimer.Stop()
		b.rtimer = nil
	}
	if t.IsZero() {
		return
	}
	d := time.Until(t)
	if d <= 0 {
		b.cond.Broadcast()
		return
	}
	b.rtimer = time.AfterFunc(d, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
}

func (b *buffer) setWriteDeadline(t time.Time) {
	b.mu.Lock()
	b.wdeadline = t
	b.mu.Unlock()
}

func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	if b.rtimer != nil {
		b.rtimer.Stop()
		b.rtimer = nil
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// PipeEnd is one end of an in-memory duplex pipe.
type PipeEnd struct {
	r, w *buffer
}

// Pipe returns two connected in-memory pipe ends. Unlike net.Pipe, writes
// never block, which removes any deadlock concern for half-duplex protocols
// driven from a single goroutine per side.
func Pipe() (a, b *PipeEnd) {
	ab := newBuffer()
	ba := newBuffer()
	return &PipeEnd{r: ba, w: ab}, &PipeEnd{r: ab, w: ba}
}

// Read implements io.Reader.
func (p *PipeEnd) Read(buf []byte) (int, error) { return p.r.read(buf) }

// Write implements io.Writer.
func (p *PipeEnd) Write(buf []byte) (int, error) { return p.w.write(buf) }

// Close closes both directions of this end. The peer's reads drain any
// buffered data and then see io.EOF.
func (p *PipeEnd) Close() error {
	p.w.close()
	p.r.close()
	return nil
}

// SetReadDeadline bounds blocking Reads on this end, with net.Conn
// semantics: a read past the deadline fails with os.ErrDeadlineExceeded and
// an already-blocked read is woken when the deadline fires. The zero time
// clears the deadline.
func (p *PipeEnd) SetReadDeadline(t time.Time) error {
	p.r.setReadDeadline(t)
	return nil
}

// SetWriteDeadline bounds Writes on this end. Pipe writes never block, so
// this only rejects writes attempted after the deadline.
func (p *PipeEnd) SetWriteDeadline(t time.Time) error {
	p.w.setWriteDeadline(t)
	return nil
}

// SetDeadline sets both read and write deadlines.
func (p *PipeEnd) SetDeadline(t time.Time) error {
	p.r.setReadDeadline(t)
	p.w.setWriteDeadline(t)
	return nil
}

// FaultyEnd wraps a PipeEnd and fails after a byte budget, for failure
// injection tests.
type FaultyEnd struct {
	*PipeEnd
	mu        sync.Mutex
	remaining int
	err       error
}

// NewFaultyEnd returns an end whose writes fail with err after writing
// allowBytes bytes.
func NewFaultyEnd(p *PipeEnd, allowBytes int, err error) *FaultyEnd {
	return &FaultyEnd{PipeEnd: p, remaining: allowBytes, err: err}
}

// Write implements io.Writer, failing once the budget is exhausted.
func (f *FaultyEnd) Write(buf []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining <= 0 {
		return 0, f.err
	}
	n := len(buf)
	if n > f.remaining {
		n = f.remaining
	}
	f.remaining -= n
	m, err := f.PipeEnd.Write(buf[:n])
	if err != nil {
		return m, err
	}
	if m < len(buf) {
		return m, f.err
	}
	return m, nil
}

// Meter wraps an io.ReadWriter and records transferred payload bytes into a
// stats.Costs. Direction and phase are set by the protocol engine as it moves
// through the session (the engine is single-threaded per session).
type Meter struct {
	rw    io.ReadWriter
	costs *stats.Costs
	// writeDir is the direction of Write calls from this endpoint's view.
	writeDir stats.Direction
	phase    stats.Phase
}

// NewMeter wraps rw. writeDir is the stats direction of local writes (e.g.
// stats.S2C when metering the server side).
func NewMeter(rw io.ReadWriter, costs *stats.Costs, writeDir stats.Direction) *Meter {
	return &Meter{rw: rw, costs: costs, writeDir: writeDir}
}

// SetPhase switches the phase attributed to subsequent traffic.
func (m *Meter) SetPhase(p stats.Phase) { m.phase = p }

// Phase reports the current phase.
func (m *Meter) Phase() stats.Phase { return m.phase }

// Read implements io.Reader. Reads are not metered: each payload byte is
// counted once, by the writer.
func (m *Meter) Read(p []byte) (int, error) { return m.rw.Read(p) }

// Write implements io.Writer, metering payload bytes.
func (m *Meter) Write(p []byte) (int, error) {
	n, err := m.rw.Write(p)
	if m.costs != nil {
		m.costs.Add(m.writeDir, m.phase, n)
	}
	return n, err
}

// Dial connects to a TCP msync server.
func Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Listen starts a TCP listener for a msync server.
func Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
