package transport

import "time"

// StreamDeadlines tracks one absolute deadline per multiplexed stream and
// reports the earliest. A multiplexed session shares one connection, so
// individual streams cannot carry their own I/O deadlines; instead the
// scheduler refreshes each live stream's deadline when that stream makes
// progress (Touch), drops finished streams (Drop), and installs
// Earliest() via Session.SetPhaseDeadline before every blocking read. The
// session's earliest-wins composition with the per-op timeout and the
// context deadline then guarantees that a single stalled stream fails the
// session within its round budget even while other streams are advancing.
//
// Owned by the session's protocol goroutine, like the phase deadline it
// feeds — not safe for concurrent use.
type StreamDeadlines struct {
	byStream map[int]time.Time
}

// NewStreamDeadlines returns an empty tracker.
func NewStreamDeadlines() *StreamDeadlines {
	return &StreamDeadlines{byStream: make(map[int]time.Time)}
}

// Touch records that stream id made progress: its deadline becomes t
// (typically now + the session's round timeout). A zero t removes any
// deadline for the stream without dropping it.
func (d *StreamDeadlines) Touch(id int, t time.Time) {
	if t.IsZero() {
		delete(d.byStream, id)
		return
	}
	d.byStream[id] = t
}

// Drop removes stream id from the tracker; finished streams must not hold
// the session to their last deadline.
func (d *StreamDeadlines) Drop(id int) { delete(d.byStream, id) }

// Earliest returns the earliest live deadline, or the zero time when no
// stream has one (meaning: no per-stream bound; the session falls back to
// its own opTimeout/context composition).
func (d *StreamDeadlines) Earliest() time.Time {
	var min time.Time
	for _, t := range d.byStream {
		if min.IsZero() || t.Before(min) {
			min = t
		}
	}
	return min
}

// Len reports how many streams currently carry a deadline.
func (d *StreamDeadlines) Len() int { return len(d.byStream) }
