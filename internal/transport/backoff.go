package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// BackoffPolicy describes a bounded exponential-backoff retry schedule with
// multiplicative jitter. The zero value means "one attempt, no retry".
type BackoffPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the nominal delay before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the nominal delay; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive attempts; values
	// below 1 mean 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)],
	// decorrelating retry storms from many clients. 0 disables jitter;
	// values are clamped to [0, 1].
	Jitter float64
	// Seed, when non-zero, makes the jitter sequence deterministic
	// (tests); 0 uses the global math/rand source.
	Seed int64
}

// attempts normalizes MaxAttempts.
func (p BackoffPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the jittered delay to wait after the given 1-based failed
// attempt. rng may be nil, in which case the global source is used.
//
// The exponential growth is capped even when MaxDelay is 0 (uncapped):
// without the cap, high attempt numbers push the float64 product past
// math.MaxInt64 and the conversion to time.Duration wraps negative, turning
// the backoff into a hot retry loop. The ceiling leaves room for the ≤2×
// jitter factor, so the returned delay is always in (0, MaxInt64].
func (p BackoffPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	// Nominal delays beyond ~146 years are indistinguishable from "wait
	// forever"; saturating there keeps every later multiply and the jitter
	// inside int64 range.
	const ceiling = float64(math.MaxInt64 / 2)
	limit := ceiling
	if p.MaxDelay > 0 && float64(p.MaxDelay) < limit {
		limit = float64(p.MaxDelay)
	}
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= limit {
			break
		}
	}
	if d > limit || math.IsInf(d, 1) {
		d = limit
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j > 0 {
		var r float64
		if rng != nil {
			r = rng.Float64()
		} else {
			r = rand.Float64()
		}
		d *= 1 - j + 2*j*r
	}
	if d >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	if d < 0 || math.IsNaN(d) {
		return 0
	}
	return time.Duration(d)
}

// hintedError carries a server-provided retry-after hint alongside a
// retryable error. Retry honors the hint by waiting at least that long
// before the next attempt.
type hintedError struct {
	err   error
	after time.Duration
}

func (e *hintedError) Error() string { return e.err.Error() }
func (e *hintedError) Unwrap() error { return e.err }

// RetryAfterHint wraps a retryable err with a server-suggested minimum wait
// before the next attempt (e.g. from a BUSY load-shedding answer). Retry
// sleeps max(policy delay, hint), so an overloaded server can stretch the
// schedule without the client abandoning its jittered backoff. A nil err
// stays nil; a non-positive hint leaves the schedule untouched.
func RetryAfterHint(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &hintedError{err: err, after: after}
}

// permanentError marks an error that Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately and returns it as-is.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs attempt (passed the 1-based attempt number) until it succeeds,
// returns an error wrapped with Permanent, the policy's attempts are
// exhausted, or ctx is done. Between attempts it sleeps per the policy's
// jittered exponential schedule on clock (nil means SystemClock).
func Retry(ctx context.Context, clock Clock, p BackoffPolicy, attempt func(n int) error) error {
	if clock == nil {
		clock = SystemClock
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed)) //nolint:gosec // jitter, not crypto
	}
	max := p.attempts()
	var last error
	for n := 1; n <= max; n++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("transport: retry cancelled after %d attempts (%w): last error: %v", n-1, err, last)
			}
			return err
		}
		last = attempt(n)
		if last == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(last, &pe) {
			return pe.err
		}
		if n == max {
			break
		}
		delay := p.Delay(n, rng)
		var hinted *hintedError
		if errors.As(last, &hinted) && hinted.after > delay {
			delay = hinted.after
		}
		if err := clock.Sleep(ctx, delay); err != nil {
			return fmt.Errorf("transport: retry cancelled after %d attempts (%w): last error: %v", n, err, last)
		}
	}
	if max == 1 {
		return last
	}
	return fmt.Errorf("transport: %d attempts failed: %w", max, last)
}
