package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// deadlineSetter is the subset of net.Conn the session layer needs to
// interrupt blocked I/O. net.Conn and *PipeEnd both implement it.
type deadlineSetter interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Session wraps a connection with context cancellation and a per-operation
// timeout, giving the frame-level protocol loops their round checkpoints:
//
//   - every Read/Write first checks the context, so a cancelled session
//     stops at the next frame boundary even on connections without
//     deadline support;
//   - when the connection supports deadlines (net.Conn, *PipeEnd), each
//     operation carries a deadline of min(now+OpTimeout, context deadline),
//     so a stalled peer fails the round instead of hanging forever;
//   - a watcher goroutine forces an immediate deadline when the context is
//     cancelled, waking I/O that is already blocked.
//
// Callers must Release the session when done to stop the watcher and clear
// the connection's deadlines.
type Session struct {
	ctx       context.Context
	rw        io.ReadWriter
	ds        deadlineSetter // nil when rw has no deadline support
	opTimeout time.Duration

	// phaseDeadline, when non-zero, caps every operation's effective
	// deadline in addition to opTimeout and the context deadline. The
	// server's admission layer uses it to bound the handshake phase so an
	// idle or slow-loris dial cannot pin a session slot; the serving loop
	// clears it once the handshake completes. Owned by the session's
	// protocol goroutine (never touched by the watcher), so a plain field.
	phaseDeadline time.Time

	stop     chan struct{}
	stopOnce sync.Once

	// I/O counters for observability; atomics so a reader can snapshot
	// them while the watcher or another half of a duplex caller is active.
	reads, writes           atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// IOStats is a snapshot of a session's transport-level activity.
type IOStats struct {
	// Reads and Writes count individual I/O operations (syscalls for TCP).
	Reads, Writes int64
	// BytesRead and BytesWritten are raw connection bytes, framing included.
	BytesRead, BytesWritten int64
}

// Stats snapshots the session's I/O counters.
func (s *Session) Stats() IOStats {
	return IOStats{
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// NewSession wraps rw for the given context. opTimeout, if positive, bounds
// each individual Read/Write (one protocol round is one write plus one read,
// so it acts as a per-round timeout). A zero opTimeout leaves operations
// bounded only by the context.
func NewSession(ctx context.Context, rw io.ReadWriter, opTimeout time.Duration) *Session {
	s := &Session{ctx: ctx, rw: rw, opTimeout: opTimeout}
	if ds, ok := rw.(deadlineSetter); ok {
		s.ds = ds
		if ctx.Done() != nil {
			s.stop = make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					// Wake any blocked operation immediately.
					_ = ds.SetReadDeadline(time.Unix(1, 0))
					_ = ds.SetWriteDeadline(time.Unix(1, 0))
				case <-s.stop:
				}
			}()
		}
	}
	return s
}

// Release stops the cancellation watcher and clears any deadlines the
// session installed on the connection. Safe to call more than once.
func (s *Session) Release() {
	s.stopOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
		}
		if s.ds != nil && s.ctx.Err() == nil {
			_ = s.ds.SetReadDeadline(time.Time{})
			_ = s.ds.SetWriteDeadline(time.Time{})
		}
	})
}

// SetPhaseDeadline installs an absolute deadline applied to every
// subsequent operation until cleared with the zero time. It composes with
// the per-operation timeout and the context deadline: the earliest wins.
// Effective only on connections with deadline support; call it from the
// session's own protocol goroutine.
func (s *Session) SetPhaseDeadline(t time.Time) { s.phaseDeadline = t }

// Read implements io.Reader with context and round-timeout checks.
func (s *Session) Read(p []byte) (int, error) { return s.do(p, true) }

// Write implements io.Writer with context and round-timeout checks.
func (s *Session) Write(p []byte) (int, error) { return s.do(p, false) }

func (s *Session) do(p []byte, read bool) (int, error) {
	if err := s.ctx.Err(); err != nil {
		return 0, fmt.Errorf("transport: session: %w", err)
	}
	if s.ds != nil {
		var dl time.Time
		if s.opTimeout > 0 {
			dl = time.Now().Add(s.opTimeout)
		}
		if cd, ok := s.ctx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
			dl = cd
		}
		if !s.phaseDeadline.IsZero() && (dl.IsZero() || s.phaseDeadline.Before(dl)) {
			dl = s.phaseDeadline
		}
		if read {
			_ = s.ds.SetReadDeadline(dl)
		} else {
			_ = s.ds.SetWriteDeadline(dl)
		}
	}
	var n int
	var err error
	if read {
		n, err = s.rw.Read(p)
		s.reads.Add(1)
		s.bytesRead.Add(int64(n))
	} else {
		n, err = s.rw.Write(p)
		s.writes.Add(1)
		s.bytesWritten.Add(int64(n))
	}
	if err != nil {
		// Attribute the failure: a cancelled context beats the raw I/O
		// error (the watcher produces deadline errors as a side effect of
		// cancellation), and a deadline hit under an opTimeout is reported
		// as a round timeout.
		if cerr := s.ctx.Err(); cerr != nil {
			return n, fmt.Errorf("transport: session: %w", cerr)
		}
		if !s.phaseDeadline.IsZero() && errors.Is(err, os.ErrDeadlineExceeded) && !time.Now().Before(s.phaseDeadline) {
			return n, fmt.Errorf("transport: handshake deadline exceeded: %w", err)
		}
		if s.opTimeout > 0 && errors.Is(err, os.ErrDeadlineExceeded) {
			return n, fmt.Errorf("transport: round timeout after %v: %w", s.opTimeout, err)
		}
	}
	return n, err
}

// Clock abstracts wall-clock time so retry/backoff schedules can be tested
// without real sleeping.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SystemClock is the real-time Clock used outside tests.
var SystemClock Clock = systemClock{}

// FakeClock is a test Clock: Sleep returns immediately, advancing Now by the
// requested duration and recording it.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFakeClock returns a FakeClock starting at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{now: t} }

// Now reports the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep records d, advances the fake time, and returns without blocking.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

// Slept returns a copy of the recorded sleep durations.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
