package transport

import (
	"testing"
	"time"
)

func TestStreamDeadlines(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewStreamDeadlines()
	if !d.Earliest().IsZero() {
		t.Fatal("empty tracker has a deadline")
	}

	d.Touch(0, base.Add(3*time.Second))
	d.Touch(1, base.Add(1*time.Second))
	d.Touch(2, base.Add(2*time.Second))
	if got := d.Earliest(); !got.Equal(base.Add(1 * time.Second)) {
		t.Fatalf("earliest = %v, want +1s", got)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}

	// Progress on the tightest stream relaxes the session bound.
	d.Touch(1, base.Add(5*time.Second))
	if got := d.Earliest(); !got.Equal(base.Add(2 * time.Second)) {
		t.Fatalf("after touch: earliest = %v, want +2s", got)
	}

	// A finished stream must not keep holding the session to its deadline.
	d.Drop(2)
	if got := d.Earliest(); !got.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("after drop: earliest = %v, want +3s", got)
	}

	// Zero-time Touch clears a stream's deadline without dropping progress
	// tracking semantics for the others.
	d.Touch(0, time.Time{})
	if got := d.Earliest(); !got.Equal(base.Add(5 * time.Second)) {
		t.Fatalf("after clear: earliest = %v, want +5s", got)
	}

	d.Drop(1)
	if !d.Earliest().IsZero() || d.Len() != 0 {
		t.Fatalf("drained tracker: earliest=%v len=%d", d.Earliest(), d.Len())
	}
}

// TestStreamDeadlinesComposeWithSession: the earliest per-stream deadline,
// installed as the session's phase deadline, interrupts a blocked read even
// though the session has a generous opTimeout — the earliest-wins rule from
// the handshake-deadline work extends to per-stream round budgets.
func TestStreamDeadlinesComposeWithSession(t *testing.T) {
	c, s := Pipe()
	defer c.Close()
	defer s.Close()

	sess := NewSession(t.Context(), c, 30*time.Second)
	defer sess.Release()

	d := NewStreamDeadlines()
	d.Touch(0, time.Now().Add(20*time.Millisecond))
	d.Touch(1, time.Now().Add(10*time.Second))
	sess.SetPhaseDeadline(d.Earliest())

	start := time.Now()
	buf := make([]byte, 1)
	_, err := sess.Read(buf) // peer never writes: stream 0 is stalled
	if err == nil {
		t.Fatal("read succeeded with no data")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read blocked %v; per-stream deadline not applied", elapsed)
	}
}
