package gtest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func classes(n int, c Class) []Class {
	out := make([]Class, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// resolve drives a plan against a ground-truth defective set, modeling a
// verifier that never lies (collision probability zero). Returns the plan.
func resolve(p *Plan, defective map[int]bool) {
	for !p.Done() {
		groups := p.Groups()
		results := make([]bool, len(groups))
		for gi, g := range groups {
			ok := true
			for _, m := range g.Members {
				if defective[m] {
					ok = false
					break
				}
			}
			results[gi] = ok
		}
		p.Absorb(results)
	}
}

func TestTrivialAllPass(t *testing.T) {
	p := NewPlan(classes(10, ClassGlobal), TrivialConfig())
	if len(p.Groups()) != 10 {
		t.Fatalf("trivial plan has %d groups", len(p.Groups()))
	}
	resolve(p, nil)
	for i := 0; i < 10; i++ {
		if !p.IsConfirmed(i) {
			t.Fatalf("candidate %d not confirmed", i)
		}
	}
}

func TestTrivialSomeFail(t *testing.T) {
	p := NewPlan(classes(5, ClassGlobal), TrivialConfig())
	resolve(p, map[int]bool{1: true, 3: true})
	want := []bool{true, false, true, false, true}
	for i, w := range want {
		if p.IsConfirmed(i) != w {
			t.Fatalf("candidate %d: confirmed=%v want %v", i, p.IsConfirmed(i), w)
		}
	}
}

// TestGroupSalvage: with enough batches, good members of a failed group are
// salvaged.
func TestGroupSalvage(t *testing.T) {
	cfg := Config{Batches: 4, GroupSize: 8, TrustedGroupSize: 8, SplitFactor: 2}
	p := NewPlan(classes(8, ClassGlobal), cfg)
	if len(p.Groups()) != 1 {
		t.Fatalf("expected one initial group, got %d", len(p.Groups()))
	}
	resolve(p, map[int]bool{5: true})
	for i := 0; i < 8; i++ {
		want := i != 5
		if p.IsConfirmed(i) != want {
			t.Fatalf("candidate %d: confirmed=%v want %v", i, p.IsConfirmed(i), want)
		}
	}
}

// TestOneBatchGroupsDropOnFailure: without salvage batches, a failed group
// drops all members.
func TestOneBatchGroupsDropOnFailure(t *testing.T) {
	cfg := Config{Batches: 1, GroupSize: 4, TrustedGroupSize: 4, SplitFactor: 2}
	p := NewPlan(classes(4, ClassGlobal), cfg)
	resolve(p, map[int]bool{0: true})
	for i := 0; i < 4; i++ {
		if p.IsConfirmed(i) {
			t.Fatalf("candidate %d confirmed despite failed group", i)
		}
	}
}

// TestClassSeparation: trusted candidates are grouped separately and more
// aggressively than global ones.
func TestClassSeparation(t *testing.T) {
	cls := append(classes(6, ClassGlobal), classes(8, ClassContinuation)...)
	cfg := Config{Batches: 2, GroupSize: 2, TrustedGroupSize: 8, SplitFactor: 2}
	p := NewPlan(cls, cfg)
	groups := p.Groups()
	// 1 trusted group of 8 + 3 global groups of 2.
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	if len(groups[0].Members) != 8 {
		t.Fatalf("trusted group has %d members", len(groups[0].Members))
	}
	// Trusted group must contain exactly the continuation candidates.
	for _, m := range groups[0].Members {
		if cls[m] != ClassContinuation {
			t.Fatalf("member %d in trusted group has class %v", m, cls[m])
		}
	}
}

// TestRetrySingleton: a failed singleton is retried while retries remain.
func TestRetrySingleton(t *testing.T) {
	cfg := Config{Batches: 3, GroupSize: 1, TrustedGroupSize: 1, SplitFactor: 2, RetryAlternates: 1}
	p := NewPlan(classes(1, ClassGlobal), cfg)
	// First test fails.
	if more := p.Absorb([]bool{false}); !more {
		t.Fatal("expected a retry batch")
	}
	g := p.Groups()
	if len(g) != 1 || !g[0].Retry {
		t.Fatalf("retry batch wrong: %+v", g)
	}
	// Retry passes (the client switched to an alternate source offset).
	if more := p.Absorb([]bool{true}); more {
		t.Fatal("plan should be done")
	}
	if !p.IsConfirmed(0) {
		t.Fatal("retried candidate not confirmed")
	}
}

func TestRetryExhaustion(t *testing.T) {
	cfg := Config{Batches: 5, GroupSize: 1, TrustedGroupSize: 1, SplitFactor: 2, RetryAlternates: 2}
	p := NewPlan(classes(1, ClassGlobal), cfg)
	rounds := 0
	for !p.Done() {
		p.Absorb(make([]bool, len(p.Groups()))) // all fail
		rounds++
		if rounds > 10 {
			t.Fatal("plan does not terminate")
		}
	}
	if p.IsConfirmed(0) {
		t.Fatal("confirmed despite always failing")
	}
	if rounds != 3 { // initial + 2 retries
		t.Fatalf("took %d batches, want 3", rounds)
	}
}

// TestQuickResolution: for arbitrary defective sets and strategies, a
// truthful verifier must confirm exactly the non-defective candidates
// whenever enough batches allow full salvage to singletons.
func TestQuickResolution(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		g := int(gRaw%8) + 1
		cfg := Config{Batches: 16, GroupSize: g, TrustedGroupSize: g * 2, SplitFactor: 2}
		cls := make([]Class, n)
		defective := map[int]bool{}
		for i := range cls {
			if rng.Intn(2) == 0 {
				cls[i] = ClassContinuation
			}
			if rng.Intn(4) == 0 {
				defective[i] = true
			}
		}
		p := NewPlan(cls, cfg)
		resolve(p, defective)
		for i := 0; i < n; i++ {
			if p.IsConfirmed(i) == defective[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchBudgetRespected: the plan never exceeds its batch budget.
func TestBatchBudgetRespected(t *testing.T) {
	for batches := 1; batches <= 4; batches++ {
		cfg := Config{Batches: batches, GroupSize: 8, TrustedGroupSize: 8, SplitFactor: 2}
		p := NewPlan(classes(32, ClassGlobal), cfg)
		used := 0
		for !p.Done() {
			p.Absorb(make([]bool, len(p.Groups()))) // everything fails
			used++
		}
		if used > batches {
			t.Fatalf("budget %d, used %d", batches, used)
		}
	}
}

func TestAbsorbCountMismatchPanics(t *testing.T) {
	p := NewPlan(classes(4, ClassGlobal), TrivialConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on result count mismatch")
		}
	}()
	p.Absorb([]bool{true})
}

func TestExpectedTestCost(t *testing.T) {
	if ExpectedTestCost(10, 20) != 210 {
		t.Fatalf("got %d", ExpectedTestCost(10, 20))
	}
}

// TestLiarSearch: probes lie "true" with some probability; verification
// must still land on the true boundary.
func TestLiarSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(1000) + 1
		truth := rng.Intn(n + 1)
		probe := func(e int) bool {
			if e <= truth {
				return true
			}
			return rng.Float64() < 0.25 // 25% lies
		}
		verify := func(e int) bool { return e <= truth }
		got := LiarSearch(n, probe, verify)
		if got > truth {
			t.Fatalf("LiarSearch returned %d beyond truth %d", got, truth)
		}
		// With truthful probes the result is exact.
		exact := LiarSearch(n, verify, verify)
		if exact != truth {
			t.Fatalf("exact search got %d, want %d", exact, truth)
		}
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), TrivialConfig(), {}} {
		s := cfg.sanitized()
		if s.Batches < 1 || s.GroupSize < 1 || s.TrustedGroupSize < 1 || s.SplitFactor < 2 {
			t.Fatalf("sanitized config invalid: %+v", s)
		}
	}
}
