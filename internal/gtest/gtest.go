// Package gtest implements the group-testing machinery behind the paper's
// optimized match verification (Section 5.3) and the searching-with-liars
// primitive behind match extension (Section 5.4).
//
// Candidates for matches are "items"; a false match is a "defective" item.
// A test asks "are all items in this group non-defective?" by comparing a
// truncated strong hash of the concatenated candidate bytes on both sides:
// if all members are true matches the test always passes; if any member is
// false the test fails except with probability 2^-vbits (a hash collision —
// the "lying" answer).
//
// Both protocol sides derive identical test plans from shared knowledge
// (the candidate list and previous batch outcomes), so only the hash bits
// and one result bit per test cross the wire.
package gtest

// Class describes how trusted a candidate is a priori; more trusted
// candidates are grouped more aggressively (the paper: "slowly grow the size
// of the groups as our confidence in the candidates grows").
type Class int

const (
	// ClassGlobal marks candidates found via global hashes (compared against
	// every position of the old file — the least trusted kind).
	ClassGlobal Class = iota
	// ClassLocal marks candidates found via local hashes (small neighborhood).
	ClassLocal
	// ClassContinuation marks candidates found via continuation hashes at a
	// single predicted position (the highest harvest rate).
	ClassContinuation
)

// Config tunes the verification strategy.
type Config struct {
	// Batches is the maximum number of verification batches per round.
	// 1 means a single batch with no salvage (failed groups are dropped).
	Batches int
	// GroupSize is the initial group size for ClassGlobal candidates;
	// 1 gives trivial per-candidate verification.
	GroupSize int
	// TrustedGroupSize is the initial group size for ClassContinuation (and
	// ClassLocal) candidates.
	TrustedGroupSize int
	// SplitFactor is how many subgroups a failed group is split into during
	// salvage.
	SplitFactor int
	// RetryAlternates lets a failed singleton candidate be re-tested once
	// (the client switches to its next alternative source offset).
	RetryAlternates int
}

// DefaultConfig mirrors the paper's best practical setting: two batches,
// moderate initial groups, binary salvage splits.
func DefaultConfig() Config {
	return Config{
		Batches:          2,
		GroupSize:        4,
		TrustedGroupSize: 8,
		SplitFactor:      2,
		RetryAlternates:  1,
	}
}

// TrivialConfig verifies every candidate individually in one batch
// (the paper's "trivial verification" strategy in Figure 6.4).
func TrivialConfig() Config {
	return Config{Batches: 1, GroupSize: 1, TrustedGroupSize: 1, SplitFactor: 2}
}

func (c Config) sanitized() Config {
	if c.Batches < 1 {
		c.Batches = 1
	}
	if c.GroupSize < 1 {
		c.GroupSize = 1
	}
	if c.TrustedGroupSize < 1 {
		c.TrustedGroupSize = c.GroupSize
	}
	if c.SplitFactor < 2 {
		c.SplitFactor = 2
	}
	if c.RetryAlternates < 0 {
		c.RetryAlternates = 0
	}
	return c
}

// Group is one test: the candidate indices it covers, in order.
type Group struct {
	Members []int
	// Retry marks a singleton re-test of a previously failed candidate.
	Retry bool
}

// Plan tracks the verification state for one round's candidates on either
// protocol side. Both sides construct it identically.
type Plan struct {
	cfg       Config
	classes   []Class
	batch     int
	current   []Group
	confirmed []bool
	dropped   []bool
	retried   []int // retries consumed per candidate
}

// NewPlan starts a verification plan for the given candidates.
func NewPlan(classes []Class, cfg Config) *Plan {
	p := &Plan{
		cfg:       cfg.sanitized(),
		classes:   classes,
		confirmed: make([]bool, len(classes)),
		dropped:   make([]bool, len(classes)),
		retried:   make([]int, len(classes)),
	}
	p.current = p.firstBatch()
	return p
}

// firstBatch partitions candidates into initial groups. Candidates of the
// same class are grouped together in index order.
func (p *Plan) firstBatch() []Group {
	var groups []Group
	emit := func(members []int, size int) {
		for len(members) > 0 {
			n := size
			if n > len(members) {
				n = len(members)
			}
			groups = append(groups, Group{Members: members[:n]})
			members = members[n:]
		}
	}
	var global, trusted []int
	for i, cl := range p.classes {
		if cl == ClassGlobal {
			global = append(global, i)
		} else {
			trusted = append(trusted, i)
		}
	}
	emit(trusted, p.cfg.TrustedGroupSize)
	emit(global, p.cfg.GroupSize)
	return groups
}

// Groups returns the tests in the current batch. Empty means the plan is
// complete.
func (p *Plan) Groups() []Group { return p.current }

// NumTests reports the number of tests in the current batch.
func (p *Plan) NumTests() int { return len(p.current) }

// Absorb records pass/fail results for the current batch (one bool per
// group, in Groups() order) and computes the next batch. It returns true if
// another batch is needed.
func (p *Plan) Absorb(results []bool) bool {
	if len(results) != len(p.current) {
		panic("gtest: result count mismatch")
	}
	var next []Group
	for gi, g := range p.current {
		if results[gi] {
			for _, m := range g.Members {
				p.confirmed[m] = true
			}
			continue
		}
		// Failed group.
		if p.batch+1 >= p.cfg.Batches {
			for _, m := range g.Members {
				p.dropped[m] = true
			}
			continue
		}
		if len(g.Members) == 1 {
			m := g.Members[0]
			if p.retried[m] < p.cfg.RetryAlternates {
				p.retried[m]++
				next = append(next, Group{Members: []int{m}, Retry: true})
			} else {
				p.dropped[m] = true
			}
			continue
		}
		// Split into SplitFactor subgroups for salvage.
		next = append(next, split(g.Members, p.cfg.SplitFactor)...)
	}
	p.batch++
	p.current = next
	return len(next) > 0
}

// split partitions members into up to k contiguous subgroups.
func split(members []int, k int) []Group {
	if k > len(members) {
		k = len(members)
	}
	out := make([]Group, 0, k)
	per := (len(members) + k - 1) / k
	for len(members) > 0 {
		n := per
		if n > len(members) {
			n = len(members)
		}
		out = append(out, Group{Members: members[:n]})
		members = members[n:]
	}
	return out
}

// Confirmed reports, after the plan completes, which candidates verified.
func (p *Plan) Confirmed() []bool { return p.confirmed }

// IsConfirmed reports whether candidate i verified.
func (p *Plan) IsConfirmed(i int) bool { return p.confirmed[i] }

// Batch reports the current batch index (0-based).
func (p *Plan) Batch() int { return p.batch }

// Done reports whether all candidates are resolved.
func (p *Plan) Done() bool { return len(p.current) == 0 }

// ExpectedTestCost estimates the wire cost in bits of a batch: vbits per test
// plus one reply bit per test. Used by the adaptive round-stopping heuristic.
func ExpectedTestCost(numTests int, vbits uint) int {
	return numTests * (int(vbits) + 1)
}

// LiarSearch performs a binary search for the largest e in [0, n] such that
// probe(e) is truly monotone-true (probe answers may lie "true" with small
// probability but never lie "false"). verify(e) is a reliable but expensive
// confirmation; on verification failure the search backtracks linearly.
//
// This models the paper's searching-with-liars view of match extension: each
// probe is a cheap continuation hash comparison, the verify step a strong
// hash. Returns the largest verified e.
func LiarSearch(n int, probe func(e int) bool, verify func(e int) bool) int {
	lo, hi := 0, n // invariant: probe truth known true at lo (e=0 trivially true)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// lo is the candidate answer; probes may have lied, so verify and walk
	// back as needed.
	for lo > 0 && !verify(lo) {
		lo--
	}
	return lo
}
