package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != Parallelism() {
		t.Fatalf("Workers(0) = %d, want Parallelism %d", got, Parallelism())
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	// A configured count is honored up to the host's real parallelism and
	// clamped beyond it: extra goroutines on a saturated host only add
	// scheduling overhead (the BENCH_scan regression).
	SetParallelism(4)
	defer SetParallelism(0)
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d, want 3", got)
	}
	if got := Workers(7); got != 4 {
		t.Fatalf("Workers(7) = %d, want 4 (clamped)", got)
	}
	if got := Workers(0); got != 4 {
		t.Fatalf("Workers(0) = %d, want 4", got)
	}
}

func TestParallelismBound(t *testing.T) {
	p := Parallelism()
	if p < 1 {
		t.Fatalf("Parallelism() = %d", p)
	}
	if gm := runtime.GOMAXPROCS(0); p > gm {
		t.Fatalf("Parallelism() = %d exceeds GOMAXPROCS %d", p, gm)
	}
	if nc := runtime.NumCPU(); p > nc {
		t.Fatalf("Parallelism() = %d exceeds NumCPU %d", p, nc)
	}
	SetParallelism(2)
	if got := Parallelism(); got != 2 {
		t.Fatalf("override: Parallelism() = %d, want 2", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != p {
		t.Fatalf("restore: Parallelism() = %d, want %d", got, p)
	}
}

// TestWorkersNeverWorseThanSerial pins the regression fix: on a
// single-parallelism host every worker count resolves to the serial path,
// so sharded execution (and its per-shard setup cost) cannot be triggered.
func TestWorkersNeverWorseThanSerial(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	for _, n := range []int{0, 1, 2, 8, 64} {
		if got := Workers(n); got != 1 {
			t.Fatalf("Workers(%d) = %d on a 1-CPU host, want 1", n, got)
		}
	}
	if s := Shards(8, 1<<20, 1<<15); s != 1 {
		t.Fatalf("Shards on a 1-CPU host = %d, want 1 (no sharding without parallelism)", s)
	}
}

// TestDoCoversAllJobs: every index runs exactly once, for serial and
// parallel worker counts.
func TestDoCoversAllJobs(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 100
		var counts [n]int32
		if err := Do(w, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDoError: an error is reported; all jobs still run (no cancellation —
// per-file protocol engines must not be left mid-message).
func TestDoError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		var ran int32
		err := Do(w, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if w == 1 && ran != 4 {
			// Serial mode stops at the first error, like the legacy loops.
			t.Fatalf("serial ran %d jobs, want 4", ran)
		}
	}
}

// TestShardBounds: shards partition [0, n) exactly, are balanced to within
// one item, and respect the minimum width.
func TestShardBounds(t *testing.T) {
	SetParallelism(8) // decouple shard counts from the test host's CPUs
	defer SetParallelism(0)
	for _, tc := range []struct{ workers, n, minShard, want int }{
		{8, 1 << 20, 1 << 15, 8},
		{8, 100, 1 << 15, 1}, // too small to shard
		{8, 1 << 16, 1 << 15, 2},
		{3, 30, 10, 3},
		{4, 0, 16, 1},
	} {
		s := Shards(tc.workers, tc.n, tc.minShard)
		if tc.n >= 10 && s != tc.want {
			t.Fatalf("Shards(%d,%d,%d) = %d, want %d", tc.workers, tc.n, tc.minShard, s, tc.want)
		}
		if Bound(tc.n, s, 0) != 0 || Bound(tc.n, s, s) != tc.n {
			t.Fatalf("shard bounds don't partition [0,%d)", tc.n)
		}
		prev := 0
		for i := 1; i <= s; i++ {
			b := Bound(tc.n, s, i)
			if b < prev {
				t.Fatalf("bounds not monotone at %d", i)
			}
			prev = b
		}
	}
}
