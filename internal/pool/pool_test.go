package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// TestDoCoversAllJobs: every index runs exactly once, for serial and
// parallel worker counts.
func TestDoCoversAllJobs(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 100
		var counts [n]int32
		if err := Do(w, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDoError: an error is reported; all jobs still run (no cancellation —
// per-file protocol engines must not be left mid-message).
func TestDoError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		var ran int32
		err := Do(w, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if w == 1 && ran != 4 {
			// Serial mode stops at the first error, like the legacy loops.
			t.Fatalf("serial ran %d jobs, want 4", ran)
		}
	}
}

// TestShardBounds: shards partition [0, n) exactly, are balanced to within
// one item, and respect the minimum width.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ workers, n, minShard, want int }{
		{8, 1 << 20, 1 << 15, 8},
		{8, 100, 1 << 15, 1},  // too small to shard
		{8, 1 << 16, 1 << 15, 2},
		{3, 30, 10, 3},
		{4, 0, 16, 1},
	} {
		s := Shards(tc.workers, tc.n, tc.minShard)
		if tc.n >= 10 && s != tc.want {
			t.Fatalf("Shards(%d,%d,%d) = %d, want %d", tc.workers, tc.n, tc.minShard, s, tc.want)
		}
		if Bound(tc.n, s, 0) != 0 || Bound(tc.n, s, s) != tc.n {
			t.Fatalf("shard bounds don't partition [0,%d)", tc.n)
		}
		prev := 0
		for i := 1; i <= s; i++ {
			b := Bound(tc.n, s, i)
			if b < prev {
				t.Fatalf("bounds not monotone at %d", i)
			}
			prev = b
		}
	}
}
