// Package pool provides the shared worker-pool primitive behind the
// engine's parallel execution paths: intra-file shard scans, per-file
// engine fan-out in the collection session loops, and batched verification
// hashing. It is a thin, allocation-light layer over goroutines whose one
// job is to make "run these n independent jobs on up to w workers" a single
// call with deterministic result placement (each job writes only its own
// slot, so callers merge results in index order regardless of scheduling).
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelismOverride, when positive, replaces the host-derived parallelism
// bound (tests and benchmarks use it to force the concurrent paths on
// single-CPU machines, or serial execution on big ones).
var parallelismOverride atomic.Int64

// Parallelism reports how many goroutines can make simultaneous progress:
// min(GOMAXPROCS, physical CPUs), unless overridden with SetParallelism.
// It is the ceiling applied to every configured worker count — spawning
// more workers than the host can run concurrently never helps and, for
// sharded scans with per-shard setup cost, measurably hurts (the
// BENCH_scan regression this clamp fixes: 0.63–0.81× "speedups" from
// sharding on a GOMAXPROCS=1 host).
func Parallelism() int {
	if o := parallelismOverride.Load(); o > 0 {
		return int(o)
	}
	p := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// SetParallelism overrides the host-derived parallelism bound (n <= 0
// restores it). For tests and benchmarks only: it changes how much real
// concurrency the pool uses, never the bytes any protocol path produces.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelismOverride.Store(int64(n))
}

// Workers resolves a configured worker count: 0 (the default) means "use
// the host", negative values are clamped to 1 (the serial legacy path), and
// every positive value is capped at Parallelism() — a worker count the host
// cannot actually run concurrently would only add scheduling overhead, so
// `-workers N` is never slower than serial.
func Workers(n int) int {
	if n < 0 {
		return 1
	}
	p := Parallelism()
	if n == 0 || n > p {
		return p
	}
	return n
}

// Do runs fn(0), ..., fn(n-1) distributed over at most Workers(workers)
// goroutines and returns the first error (by completion order; callers that
// need a deterministic error should not depend on which one wins). With one
// worker or one job it runs inline on the calling goroutine, byte-for-byte
// the legacy serial path.
//
// Jobs are handed out through a channel, so uneven job costs load-balance
// across workers. fn must not touch another job's state; determinism is the
// caller's contract (write only slot i).
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Shards splits n items into contiguous ranges for up to `workers` workers,
// keeping every shard at least minShard items wide (so per-shard setup cost
// — e.g. re-seeding a rolling window — stays amortized). It returns the
// number of shards; shard s covers [Bound(n, shards, s), Bound(n, shards,
// s+1)). At most one shard is returned when n < 2*minShard.
func Shards(workers, n, minShard int) int {
	if minShard < 1 {
		minShard = 1
	}
	s := Workers(workers)
	if max := n / minShard; s > max {
		s = max
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Bound returns the start of shard s when n items are split into `shards`
// contiguous ranges: shard s covers [Bound(n, shards, s), Bound(n, shards,
// s+1)). The split is balanced to within one item and exact: Bound(n, k, 0)
// == 0 and Bound(n, k, k) == n.
func Bound(n, shards, s int) int {
	return n * s / shards
}
