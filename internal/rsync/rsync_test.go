package rsync

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
)

// signMatchPatch runs the full pipeline without compression and checks
// reconstruction.
func signMatchPatch(old, cur []byte, blockSize, strongLen int) bool {
	sig := Sign(old, blockSize, strongLen)
	tokens := GenerateTokens(sig, cur)
	out, err := Patch(old, sig, tokens)
	return err == nil && bytes.Equal(out, cur)
}

func TestSignMatchPatchBasics(t *testing.T) {
	cases := []struct{ old, cur string }{
		{"", ""},
		{"", "new content entirely"},
		{"old content entirely", ""},
		{"identical", "identical"},
		{"aaaa bbbb cccc dddd", "aaaa XXXX cccc dddd"},
		{"prefix middle suffix", "prefix inserted middle suffix"},
	}
	for i, c := range cases {
		for _, bs := range []int{4, 7, 16} {
			if !signMatchPatch([]byte(c.old), []byte(c.cur), bs, 8) {
				t.Errorf("case %d bs %d failed", i, bs)
			}
		}
	}
}

func TestQuickSignMatchPatch(t *testing.T) {
	f := func(old, cur []byte, bsRaw uint8) bool {
		bs := int(bsRaw%64) + 1
		return signMatchPatch(old, cur, bs, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSyncSimilarFiles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := corpus.SourceText(rng, 5000+rng.Intn(20000))
		em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 40, BurstSpread: 300}
		cur := em.Apply(rng, old)
		r := Sync(old, cur, DefaultBlockSize, DefaultStrongLen)
		return bytes.Equal(r.Output, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncCostBeatsFullTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := corpus.SourceText(rng, 200_000)
	cur := append([]byte(nil), old...)
	copy(cur[100_000:], []byte("a single small edit"))
	r := Sync(old, cur, DefaultBlockSize, DefaultStrongLen)
	if !bytes.Equal(r.Output, cur) {
		t.Fatal("mismatch")
	}
	total := r.C2S + r.S2C
	if total > len(cur)/10 {
		t.Fatalf("rsync cost %d for tiny edit in %d-byte file", total, len(cur))
	}
	t.Logf("rsync: c2s %d, s2c %d (%.2f%% of file)", r.C2S, r.S2C,
		100*float64(total)/float64(len(cur)))
}

func TestTailBlockMatch(t *testing.T) {
	// A file whose length is not a multiple of the block size, unchanged
	// except at the front: the odd tail must still be matched.
	old := append(bytes.Repeat([]byte("0123456789abcdef"), 100), []byte("odd-tail")...)
	cur := append([]byte("PREFIX"), old...)
	sig := Sign(old, 64, 8)
	tokens := GenerateTokens(sig, cur)
	out, err := Patch(old, sig, tokens)
	if err != nil || !bytes.Equal(out, cur) {
		t.Fatalf("err=%v match=%v", err, bytes.Equal(out, cur))
	}
	// The tail must have been sent as a block reference, not literals:
	// token stream should be much smaller than the file.
	if len(tokens) > len(cur)/4 {
		t.Fatalf("token stream %d bytes suggests tail went literal", len(tokens))
	}
}

func TestWireSize(t *testing.T) {
	old := make([]byte, 7001)
	sig := Sign(old, 700, 2)
	// 10 full blocks plus a 1-byte tail: 11 * 6 + header.
	want := 10 + 11*6
	if sig.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", sig.WireSize(), want)
	}
}

func TestSyncFallbackOnCollision(t *testing.T) {
	// strongLen 1 plus adversarial weak-collisions can slip false blocks
	// through; the whole-file check must catch any mismatch and fall back.
	// Construct a guaranteed collision: two blocks with equal Adler and
	// equal 1-byte MD4 prefix would be needed; instead force the issue by
	// syncing with a signature computed from DIFFERENT data.
	rng := rand.New(rand.NewSource(3))
	old := corpus.SourceText(rng, 10_000)
	cur := corpus.SourceText(rng, 10_000)
	r := Sync(old, cur, 128, 1)
	if !bytes.Equal(r.Output, cur) {
		t.Fatal("fallback did not restore correctness")
	}
}

func TestSyncBestNotWorseThanDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	old := corpus.SourceText(rng, 60_000)
	em := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 30, BurstSpread: 200}
	cur := em.Apply(rng, old)
	def := Sync(old, cur, 700, DefaultStrongLen)
	best, bs := SyncBest(old, cur, DefaultStrongLen)
	if best.C2S+best.S2C > def.C2S+def.S2C {
		t.Fatalf("best (%d at bs=%d) worse than default (%d)",
			best.C2S+best.S2C, bs, def.C2S+def.S2C)
	}
	if !bytes.Equal(best.Output, cur) {
		t.Fatal("mismatch")
	}
}

func TestSignValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Sign(nil, 0, 2) },
		func() { Sign(nil, 8, 0) },
		func() { Sign(nil, 8, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Sign args accepted")
				}
			}()
			fn()
		}()
	}
}

func TestPatchCorruptTokens(t *testing.T) {
	old := []byte("some old data here")
	sig := Sign(old, 4, 2)
	for _, bad := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // overlong varint
		{0x05},             // block ref out of range
		{0x00, 0x10, 0x41}, // literal run longer than payload
		{0x00},             // missing literal length
	} {
		if _, err := Patch(old, sig, bad); err == nil {
			t.Errorf("corrupt tokens %v accepted", bad)
		}
	}
}

func BenchmarkSync256K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	old := corpus.SourceText(rng, 256<<10)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	cur := em.Apply(rng, old)
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sync(old, cur, DefaultBlockSize, DefaultStrongLen)
	}
}
