package rsync

import (
	"encoding/binary"

	"msync/internal/inplace"
)

// PatchInPlace reconstructs the current file inside the old file's buffer
// (in the manner of Rasch/Burns in-place rsync), returning the result and
// the planner's extra-space statistics. The returned slice may alias old's
// storage; the caller must treat old as consumed.
func PatchInPlace(old []byte, sig *Signature, tokens []byte) ([]byte, inplace.Stats, error) {
	var ops []inplace.Op
	bs := sig.BlockSize
	pos := 0
	for len(tokens) > 0 {
		v, n := binary.Uvarint(tokens)
		if n <= 0 {
			return nil, inplace.Stats{}, ErrCorrupt
		}
		tokens = tokens[n:]
		switch {
		case v == opLiterals:
			l, n := binary.Uvarint(tokens)
			if n <= 0 || uint64(len(tokens)-n) < l {
				return nil, inplace.Stats{}, ErrCorrupt
			}
			tokens = tokens[n:]
			// Literal data must be copied: the token buffer does not
			// survive, and in-place execution defers literal writes.
			data := append([]byte(nil), tokens[:l]...)
			tokens = tokens[l:]
			ops = append(ops, inplace.Op{WriteOff: pos, Data: data})
			pos += int(l)
		case v == tailRef+1:
			if sig.TailLen == 0 {
				return nil, inplace.Stats{}, ErrCorrupt
			}
			start := len(sig.Weak) * bs
			ops = append(ops, inplace.Op{WriteOff: pos, ReadOff: start, Len: sig.TailLen})
			pos += sig.TailLen
		default:
			bi := int(v - 1)
			if bi < 0 || bi >= len(sig.Weak) {
				return nil, inplace.Stats{}, ErrCorrupt
			}
			ops = append(ops, inplace.Op{WriteOff: pos, ReadOff: bi * bs, Len: bs})
			pos += bs
		}
	}
	return inplace.Apply(old, ops, pos)
}
