package rsync

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
)

func TestPatchInPlaceMatchesPatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := corpus.SourceText(rng, 2000+rng.Intn(20000))
		em := corpus.EditModel{BurstsPer32KB: 6, BurstEdits: 5, EditSize: 60, BurstSpread: 400}
		cur := em.Apply(rng, old)
		bs := []int{64, 256, 700}[rng.Intn(3)]
		sig := Sign(old, bs, 8)
		tokens := GenerateTokens(sig, cur)
		want, err := Patch(old, sig, tokens)
		if err != nil {
			return false
		}
		got, _, err := PatchInPlace(append([]byte(nil), old...), sig, tokens)
		return err == nil && bytes.Equal(got, want) && bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPatchInPlaceExtraSpaceBounded: for a lightly edited file, the in-place
// planner should need little or no buffering (the whole point of [40]).
func TestPatchInPlaceExtraSpaceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := corpus.SourceText(rng, 100_000)
	cur := append([]byte(nil), old...)
	copy(cur[40_000:], []byte("small change"))
	sig := Sign(old, 700, 8)
	tokens := GenerateTokens(sig, cur)
	got, st, err := PatchInPlace(append([]byte(nil), old...), sig, tokens)
	if err != nil || !bytes.Equal(got, cur) {
		t.Fatalf("err=%v", err)
	}
	if st.ExtraBytes > len(cur)/50 {
		t.Fatalf("in-place used %d extra bytes for an aligned update", st.ExtraBytes)
	}
	t.Logf("in-place: %d copies, %d buffered, %d extra bytes",
		st.Copies, st.Buffered, st.ExtraBytes)
}

// TestPatchInPlaceShifted: an insertion at the front forces every block to
// move; the planner must still reconstruct correctly with bounded extra
// space (blocks shift right, creating a dependency chain, not a cycle...
// but in reverse order, so buffering may occur — correctness is what
// matters).
func TestPatchInPlaceShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := corpus.SourceText(rng, 50_000)
	cur := append([]byte("INSERTED AT FRONT "), old...)
	sig := Sign(old, 512, 8)
	tokens := GenerateTokens(sig, cur)
	got, st, err := PatchInPlace(append([]byte(nil), old...), sig, tokens)
	if err != nil || !bytes.Equal(got, cur) {
		t.Fatalf("err=%v match=%v", err, err == nil && bytes.Equal(got, cur))
	}
	t.Logf("right-shift: %d copies, %d buffered, %d extra bytes",
		st.Copies, st.Buffered, st.ExtraBytes)
}

func TestPatchInPlaceCorruptTokens(t *testing.T) {
	old := []byte("some old data here")
	sig := Sign(old, 4, 2)
	for _, bad := range [][]byte{{0x7F}, {0x00}, {0x00, 0x10, 0x41}} {
		if _, _, err := PatchInPlace(append([]byte(nil), old...), sig, bad); err == nil {
			t.Errorf("corrupt tokens %v accepted", bad)
		}
	}
}
