// Package rsync implements the rsync file synchronization algorithm of
// Tridgell and MacKerras, the paper's primary baseline.
//
// The client (holder of the outdated file) computes per-block signatures —
// a 32-bit rolling checksum plus a truncated MD4 strong checksum — and sends
// them to the server. The server slides a window over the current file,
// looking the rolling checksum up at every alignment, verifies candidates
// with the strong checksum, and emits a stream of literals and block
// references which is then compressed (rsync uses a gzip-like coder; we use
// the self-referential mode of internal/delta). A whole-file strong checksum
// detects the rare double-collision failure, in which case the file is
// transferred in full.
package rsync

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/rolling"
)

// DefaultBlockSize is rsync's traditional default block size in bytes
// (the paper quotes ~700).
const DefaultBlockSize = 700

// DefaultStrongLen is the number of MD4 bytes per block signature. The paper
// notes two bytes provide sufficient power when backed by a whole-file check.
const DefaultStrongLen = 2

// ErrCorrupt reports a malformed token stream.
var ErrCorrupt = errors.New("rsync: corrupt token stream")

// Signature is the client-side per-block summary of the outdated file.
type Signature struct {
	BlockSize int
	StrongLen int
	FileLen   int
	Weak      []uint32 // rolling checksum per full block
	Strong    [][]byte // truncated MD4 per full block
	// Tail is the final short block (possibly empty).
	TailLen    int
	TailWeak   uint32
	TailStrong []byte
}

// Sign computes the signature of old with the given block size.
func Sign(old []byte, blockSize, strongLen int) *Signature {
	if blockSize <= 0 {
		panic("rsync: block size must be positive")
	}
	if strongLen <= 0 || strongLen > md4.Size {
		panic(fmt.Sprintf("rsync: strong length %d out of range", strongLen))
	}
	s := &Signature{BlockSize: blockSize, StrongLen: strongLen, FileLen: len(old)}
	n := len(old) / blockSize
	s.Weak = make([]uint32, n)
	s.Strong = make([][]byte, n)
	for i := 0; i < n; i++ {
		b := old[i*blockSize : (i+1)*blockSize]
		s.Weak[i] = rolling.AdlerSum(b)
		sum := md4.Sum(b)
		s.Strong[i] = append([]byte(nil), sum[:strongLen]...)
	}
	if tail := old[n*blockSize:]; len(tail) > 0 {
		s.TailLen = len(tail)
		s.TailWeak = rolling.AdlerSum(tail)
		sum := md4.Sum(tail)
		s.TailStrong = append([]byte(nil), sum[:strongLen]...)
	}
	return s
}

// WireSize reports the client→server cost of this signature in bytes:
// 4 weak + StrongLen strong per block, plus a small header.
func (s *Signature) WireSize() int {
	const header = 10 // file length, block size, block count as varints
	n := len(s.Weak) * (4 + s.StrongLen)
	if s.TailLen > 0 {
		n += 4 + s.StrongLen
	}
	return header + n
}

// Token stream opcodes (pre-compression).
const (
	opLiterals = 0 // followed by uvarint length + raw bytes
	// values >= 1 reference block (value-1); value == ^0 marks the tail block.
)

const tailRef = ^uint64(0) >> 1 // large sentinel for the tail block reference

// GenerateTokens runs the server-side matching pass and returns the
// uncompressed token stream encoding cur relative to the signature.
func GenerateTokens(sig *Signature, cur []byte) []byte {
	var out []byte
	bs := sig.BlockSize

	weakIndex := make(map[uint32][]int, len(sig.Weak))
	for i, w := range sig.Weak {
		weakIndex[w] = append(weakIndex[w], i)
	}

	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			run := end - litStart
			out = binary.AppendUvarint(out, uint64(opLiterals))
			out = binary.AppendUvarint(out, uint64(run))
			out = append(out, cur[litStart:litStart+run]...)
			litStart = end
		}
	}

	if len(cur) >= bs && len(sig.Weak) > 0 {
		ad := rolling.NewAdler(bs)
		ad.Init(cur)
		i := 0
		for {
			if blocks, ok := weakIndex[ad.Sum()]; ok {
				matched := -1
				var strong []byte
				for _, bi := range blocks {
					if strong == nil {
						sum := md4.Sum(cur[i : i+bs])
						strong = sum[:sig.StrongLen]
					}
					if bytes.Equal(strong, sig.Strong[bi]) {
						matched = bi
						break
					}
				}
				if matched >= 0 {
					flushLit(i)
					out = binary.AppendUvarint(out, uint64(matched)+1)
					litStart = i + bs
					i += bs
					if i+bs > len(cur) {
						break
					}
					ad.Init(cur[i:])
					continue
				}
			}
			if i+bs >= len(cur) {
				break
			}
			ad.Roll(cur[i], cur[i+bs])
			i++
		}
	}

	// Tail block: match only at the very end of cur.
	if sig.TailLen > 0 && len(cur)-litStart >= sig.TailLen {
		start := len(cur) - sig.TailLen
		if start >= litStart && rolling.AdlerSum(cur[start:]) == sig.TailWeak {
			sum := md4.Sum(cur[start:])
			if bytes.Equal(sum[:sig.StrongLen], sig.TailStrong) {
				flushLit(start)
				out = binary.AppendUvarint(out, tailRef+1)
				litStart = len(cur)
			}
		}
	}
	flushLit(len(cur))
	return out
}

// Patch reconstructs the current file from the outdated file and a token
// stream produced by GenerateTokens.
func Patch(old []byte, sig *Signature, tokens []byte) ([]byte, error) {
	var out []byte
	bs := sig.BlockSize
	for len(tokens) > 0 {
		v, n := binary.Uvarint(tokens)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		tokens = tokens[n:]
		switch {
		case v == opLiterals:
			l, n := binary.Uvarint(tokens)
			if n <= 0 || uint64(len(tokens)-n) < l {
				return nil, ErrCorrupt
			}
			tokens = tokens[n:]
			out = append(out, tokens[:l]...)
			tokens = tokens[l:]
		case v == tailRef+1:
			if sig.TailLen == 0 {
				return nil, ErrCorrupt
			}
			start := len(sig.Weak) * bs
			out = append(out, old[start:start+sig.TailLen]...)
		default:
			bi := int(v - 1)
			if bi < 0 || bi >= len(sig.Weak) {
				return nil, ErrCorrupt
			}
			out = append(out, old[bi*bs:(bi+1)*bs]...)
		}
	}
	return out, nil
}

// Result summarizes one rsync file transfer.
type Result struct {
	// C2S is the client→server byte cost (the signature).
	C2S int
	// S2C is the server→client byte cost (compressed tokens, plus the file
	// itself on fallback).
	S2C int
	// Output is the reconstructed file.
	Output []byte
	// FellBack reports that the whole-file check failed and the file was
	// retransmitted in full.
	FellBack bool
}

// Sync runs the full rsync exchange for one file with both sides simulated
// locally, returning exact wire costs.
func Sync(old, cur []byte, blockSize, strongLen int) Result {
	sig := Sign(old, blockSize, strongLen)
	tokens := GenerateTokens(sig, cur)
	compressed := delta.Compress(tokens)

	res := Result{C2S: sig.WireSize(), S2C: len(compressed) + md4.Size}
	decompressed, err := delta.Decompress(compressed)
	if err == nil {
		if out, perr := Patch(old, sig, decompressed); perr == nil {
			if md4.Sum(out) == md4.Sum(cur) {
				res.Output = out
				return res
			}
		}
	}
	// Double-collision (or corruption): fall back to a full compressed copy,
	// as the paper prescribes.
	full := delta.Compress(cur)
	res.S2C += len(full)
	res.Output = append([]byte(nil), cur...)
	res.FellBack = true
	return res
}

// CandidateBlockSizes is the sweep used by the idealized "rsync with optimal
// block size" baseline.
var CandidateBlockSizes = []int{128, 256, 512, 700, 1024, 2048, 4096, 8192}

// SyncBest runs Sync for every candidate block size and returns the cheapest
// outcome — the paper's idealized rsync oracle.
func SyncBest(old, cur []byte, strongLen int) (Result, int) {
	var best Result
	bestBS := 0
	for _, bs := range CandidateBlockSizes {
		r := Sync(old, cur, bs, strongLen)
		if bestBS == 0 || r.C2S+r.S2C < best.C2S+best.S2C {
			best, bestBS = r, bs
		}
	}
	return best, bestBS
}
