package rsync

import "testing"

// FuzzPatch: arbitrary token streams against a fixed signature must never
// panic or read out of bounds.
func FuzzPatch(f *testing.F) {
	old := []byte("the old file contents used for every fuzzing iteration here")
	sig := Sign(old, 8, 2)
	f.Add(GenerateTokens(sig, []byte("the old file contents, slightly edited for the corpus")))
	f.Add([]byte{0x05})
	f.Add([]byte{0x00, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, tokens []byte) {
		out, err := Patch(old, sig, tokens)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("implausible output %d", len(out))
		}
		outIP, _, errIP := PatchInPlace(append([]byte(nil), old...), sig, tokens)
		if (err == nil) != (errIP == nil) && err == nil {
			// In-place adds write-tiling validation, so it may reject
			// streams Patch accepts — but never the reverse.
			t.Fatalf("in-place accepted what Patch rejected")
		}
		_ = outIP
	})
}
