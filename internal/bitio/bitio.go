// Package bitio implements bit-level readers and writers used to pack
// k-bit hash values and bitmaps onto the wire.
//
// Bits are written most-significant-first within each byte, which keeps the
// encoded stream independent of host endianness and makes truncated hash
// prefixes contiguous on the wire.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned when a read runs past the end of the input.
var ErrOverflow = errors.New("bitio: read past end of input")

// Writer accumulates bits into a byte slice. The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of bits currently in cur (0..7)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		free := 8 - w.nCur
		if n <= free {
			w.cur |= byte(v << (free - n))
			w.nCur += n
			if w.nCur == 8 {
				w.buf = append(w.buf, w.cur)
				w.cur, w.nCur = 0, 0
			}
			return
		}
		// Fill the current byte with the top `free` bits of the remaining value.
		w.cur |= byte(v >> (n - free))
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
		n -= free
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// WriteBool is an alias for WriteBit, matching encoding-style naming.
func (w *Writer) WriteBool(b bool) { w.WriteBit(b) }

// WriteBytes appends whole bytes (bit-aligned or not).
func (w *Writer) WriteBytes(p []byte) {
	if w.nCur == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if w.nCur > 0 {
		w.WriteBits(0, 8-w.nCur)
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Len reports the number of bytes Bytes would currently return.
func (w *Writer) Len() int {
	if w.nCur > 0 {
		return len(w.buf) + 1
	}
	return len(w.buf)
}

// Bytes returns the encoded bytes, padding the final partial byte with zeros.
// The Writer remains usable; further writes continue from the unpadded state.
func (w *Writer) Bytes() []byte {
	if w.nCur == 0 {
		out := make([]byte, len(w.buf))
		copy(out, w.buf)
		return out
	}
	out := make([]byte, len(w.buf)+1)
	copy(out, w.buf)
	out[len(w.buf)] = w.cur
	return out
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits from a byte slice.
type Reader struct {
	buf []byte
	pos uint // bit position from the start
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// ReadBits reads n bits (most significant first) and returns them in the low
// bits of the result. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	if r.pos+n > uint(len(r.buf))*8 {
		return 0, ErrOverflow
	}
	var v uint64
	remaining := n
	for remaining > 0 {
		byteIdx := r.pos / 8
		bitOff := r.pos % 8
		avail := 8 - bitOff
		take := remaining
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += take
		remaining -= take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitio: ReadBytes n=%d", n)
	}
	if r.pos%8 == 0 {
		start := int(r.pos / 8)
		if start+n > len(r.buf) {
			return nil, ErrOverflow
		}
		out := make([]byte, n)
		copy(out, r.buf[start:start+n])
		r.pos += uint(n) * 8
		return out, nil
	}
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Align advances the read position to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.pos % 8; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitsRemaining reports how many bits are left to read.
func (r *Reader) BitsRemaining() int { return len(r.buf)*8 - int(r.pos) }
