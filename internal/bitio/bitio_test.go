package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBit(true)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)
	r := NewReader(w.Bytes())

	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xFFFF {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadBit(); !v {
		t.Fatal("bit")
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Fatalf("got %d", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("got %x", v)
	}
}

// TestQuickRoundTrip writes random-width values and reads them back.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		type item struct {
			v    uint64
			bits uint
		}
		items := make([]item, count)
		w := &Writer{}
		for i := range items {
			bits := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if bits < 64 {
				v &= (1 << bits) - 1
			}
			items[i] = item{v, bits}
			w.WriteBits(v, bits)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.bits)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0xFF, 4) // only low 4 bits should land
	r := NewReader(w.Bytes())
	v, _ := r.ReadBits(4)
	if v != 0xF {
		t.Fatalf("got %x", v)
	}
}

func TestZeroWidth(t *testing.T) {
	w := &Writer{}
	w.WriteBits(123, 0)
	if w.BitLen() != 0 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	r := NewReader(nil)
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(9); err != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	// The failed read must not consume anything usable incorrectly.
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8-bit read after failed 9-bit read: %v", err)
	}
}

func TestWriteBytesAlignedAndUnaligned(t *testing.T) {
	payload := []byte{1, 2, 3, 250}
	// Aligned.
	w := &Writer{}
	w.WriteBytes(payload)
	if !bytes.Equal(w.Bytes(), payload) {
		t.Fatalf("aligned: %v", w.Bytes())
	}
	// Unaligned.
	w = &Writer{}
	w.WriteBits(1, 1)
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("unaligned: %v err=%v", got, err)
	}
}

func TestAlign(t *testing.T) {
	w := &Writer{}
	w.WriteBits(1, 3)
	w.Align()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.Align() // idempotent at a boundary
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after second Align = %d", w.BitLen())
	}
	w.WriteBytes([]byte{0x42})
	r := NewReader(w.Bytes())
	r.ReadBits(3)
	r.Align()
	b, err := r.ReadBytes(1)
	if err != nil || b[0] != 0x42 {
		t.Fatalf("b=%v err=%v", b, err)
	}
}

func TestLenAndBitLen(t *testing.T) {
	w := &Writer{}
	if w.Len() != 0 {
		t.Fatal("empty Len")
	}
	w.WriteBits(0, 9)
	if w.Len() != 2 || w.BitLen() != 9 {
		t.Fatalf("Len=%d BitLen=%d", w.Len(), w.BitLen())
	}
}

func TestReset(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0xFFFF, 13)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteBits(0b1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("got %x", w.Bytes())
	}
}

func TestBytesDoesNotFinalize(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0b1, 1)
	_ = w.Bytes() // snapshot with padding
	w.WriteBits(0b1, 1)
	r := NewReader(w.Bytes())
	v, _ := r.ReadBits(2)
	if v != 0b11 {
		t.Fatalf("got %b, want 11", v)
	}
}

func TestBitsRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.BitsRemaining() != 24 {
		t.Fatal("initial")
	}
	r.ReadBits(5)
	if r.BitsRemaining() != 19 {
		t.Fatalf("got %d", r.BitsRemaining())
	}
}

func TestReadBytesErrors(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if _, err := r.ReadBytes(3); err != ErrOverflow {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.ReadBytes(-1); err == nil {
		t.Fatal("negative count accepted")
	}
}
