// Package md4 implements the MD4 hash algorithm as defined in RFC 1320.
//
// MD4 is cryptographically broken and is implemented here solely because the
// rsync algorithm this repository reproduces as a baseline uses MD4 as its
// strong block checksum (Tridgell/MacKerras), and MD4 is not available in the
// Go standard library. Do not use it for security purposes.
package md4

import (
	"encoding/binary"
	"hash"
)

// Size is the size of an MD4 checksum in bytes.
const Size = 16

// BlockSize is the block size of MD4 in bytes.
const BlockSize = 64

const (
	init0 = 0x67452301
	init1 = 0xEFCDAB89
	init2 = 0x98BADCFE
	init3 = 0x10325476
)

type digest struct {
	s   [4]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a new hash.Hash computing the MD4 checksum.
func New() hash.Hash {
	d := new(digest)
	d.Reset()
	return d
}

func (d *digest) Reset() {
	d.s[0], d.s[1], d.s[2], d.s[3] = init0, init1, init2, init3
	d.nx = 0
	d.len = 0
}

func (d *digest) Size() int { return Size }

func (d *digest) BlockSize() int { return BlockSize }

func (d *digest) Write(p []byte) (n int, err error) {
	n = len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			block(d, d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		block(d, p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

func (d *digest) Sum(in []byte) []byte {
	// Make a copy so callers can keep writing.
	d0 := *d
	h := d0.checkSum()
	return append(in, h[:]...)
}

func (d *digest) checkSum() [Size]byte {
	// Padding: append 0x80, then zeros, then the bit length (little endian).
	length := d.len
	var tmp [64]byte
	tmp[0] = 0x80
	if length%64 < 56 {
		d.Write(tmp[0 : 56-length%64])
	} else {
		d.Write(tmp[0 : 64+56-length%64])
	}
	length <<= 3
	binary.LittleEndian.PutUint64(tmp[:8], length)
	d.Write(tmp[:8])

	if d.nx != 0 {
		panic("md4: internal error: non-empty buffer after padding")
	}

	var out [Size]byte
	for i, v := range d.s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// Sum returns the MD4 checksum of data.
func Sum(data []byte) [Size]byte {
	var d digest
	d.Reset()
	d.Write(data)
	return d.checkSum()
}

var shift1 = [...]uint{3, 7, 11, 19}
var shift2 = [...]uint{3, 5, 9, 13}
var shift3 = [...]uint{3, 9, 11, 15}

var xIndex2 = [...]uint{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}
var xIndex3 = [...]uint{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

func block(d *digest, p []byte) {
	a, b, c, dd := d.s[0], d.s[1], d.s[2], d.s[3]
	var x [16]uint32
	for i := 0; i < 16; i++ {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}

	// Round 1: F(x,y,z) = (x & y) | (~x & z)
	for i := uint(0); i < 16; i++ {
		xi := x[i]
		s := shift1[i%4]
		f := (b & c) | (^b & dd)
		a += f + xi
		a = a<<s | a>>(32-s)
		a, b, c, dd = dd, a, b, c
	}

	// Round 2: G(x,y,z) = (x & y) | (x & z) | (y & z), +0x5A827999
	for i := uint(0); i < 16; i++ {
		xi := x[xIndex2[i]]
		s := shift2[i%4]
		g := (b & c) | (b & dd) | (c & dd)
		a += g + xi + 0x5A827999
		a = a<<s | a>>(32-s)
		a, b, c, dd = dd, a, b, c
	}

	// Round 3: H(x,y,z) = x ^ y ^ z, +0x6ED9EBA1
	for i := uint(0); i < 16; i++ {
		xi := x[xIndex3[i]]
		s := shift3[i%4]
		h := b ^ c ^ dd
		a += h + xi + 0x6ED9EBA1
		a = a<<s | a>>(32-s)
		a, b, c, dd = dd, a, b, c
	}

	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
}
