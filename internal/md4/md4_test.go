package md4

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// RFC 1320 appendix A.5 test suite.
var rfcVectors = []struct {
	in   string
	want string
}{
	{"", "31d6cfe0d16ae931b73c59d7e0c089c0"},
	{"a", "bde52cb31de33e46245e05fbdbd6fb24"},
	{"abc", "a448017aaf21d8525fc10ae87aa6729d"},
	{"message digest", "d9130a8164549fe818874806e1c7014b"},
	{"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
		"043f8582f241db351ce627e153e7f0e4"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
		"e33b4ddc9c38f2199c3e7b164fcc0536"},
}

func TestRFCVectors(t *testing.T) {
	for _, v := range rfcVectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("MD4(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

// TestIncrementalEqualsOneShot: arbitrary write splits must not change the
// digest.
func TestIncrementalEqualsOneShot(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		h := New()
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			h.Write(rest[:n])
			rest = rest[n:]
		}
		h.Write(rest)
		want := Sum(data)
		return bytes.Equal(h.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotFinalize(t *testing.T) {
	h := New()
	h.Write([]byte("hello "))
	first := h.Sum(nil)
	h.Write([]byte("world"))
	full := h.Sum(nil)
	want := Sum([]byte("hello world"))
	if !bytes.Equal(full, want[:]) {
		t.Fatal("Sum finalized the state")
	}
	wantFirst := Sum([]byte("hello "))
	if !bytes.Equal(first, wantFirst[:]) {
		t.Fatal("first Sum wrong")
	}
}

func TestSumAppends(t *testing.T) {
	h := New()
	h.Write([]byte("x"))
	prefix := []byte{1, 2, 3}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:3], prefix) || len(out) != 3+Size {
		t.Fatalf("Sum(prefix) = %x", out)
	}
}

func TestInterface(t *testing.T) {
	h := New()
	if h.Size() != 16 || h.BlockSize() != 64 {
		t.Fatal("Size/BlockSize")
	}
	h.Write([]byte("abc"))
	h.Reset()
	got := h.Sum(nil)
	want := Sum(nil)
	if !bytes.Equal(got, want[:]) {
		t.Fatal("Reset did not restore initial state")
	}
}

// TestBoundarySizes exercises padding around the 56/64-byte boundary.
func TestBoundarySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 50; n <= 70; n++ {
		data := make([]byte, n)
		rng.Read(data)
		h := New()
		h.Write(data)
		got := h.Sum(nil)
		want := Sum(data)
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("size %d: hash mismatch", n)
		}
	}
}

func BenchmarkSum4K(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}
