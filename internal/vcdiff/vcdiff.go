// Package vcdiff implements the VCDIFF generic differencing format of
// RFC 3284 (Korn/Vo), the second delta-compression baseline the paper
// evaluates against. The encoder reuses the LZ parse from internal/delta
// and emits a single standard window per file; the decoder accepts any
// single-source-window VCDIFF stream using the default code table.
package vcdiff

import (
	"errors"
	"fmt"

	"msync/internal/delta"
)

// Header magic per RFC 3284 §4.1: 'V'|0x80, 'C'|0x80, 'D'|0x80, version 0.
var magic = []byte{0xD6, 0xC3, 0xC4, 0x00}

// Window indicator bits.
const (
	vcdSource = 0x01
	vcdTarget = 0x02
)

// Instruction types.
const (
	typNoop = iota
	typAdd
	typRun
	typCopy
)

// Address cache geometry of the default code table.
const (
	sNear = 4
	sSame = 3
)

// codeEntry is one (or a pair of) instruction(s) from the code table.
type codeEntry struct {
	type1, size1, mode1 byte
	type2, size2, mode2 byte
}

// defaultTable is the RFC 3284 §5.6 default instruction code table.
var defaultTable = buildDefaultTable()

func buildDefaultTable() [256]codeEntry {
	var t [256]codeEntry
	i := 0
	add := func(e codeEntry) {
		t[i] = e
		i++
	}
	// 1. RUN 0.
	add(codeEntry{type1: typRun})
	// 2. ADD sizes 0 (explicit), 1..17.
	for s := 0; s <= 17; s++ {
		add(codeEntry{type1: typAdd, size1: byte(s)})
	}
	// 3. COPY sizes 0 (explicit), 4..18 for each of the 9 modes.
	for m := 0; m < sNear+sSame+2; m++ {
		add(codeEntry{type1: typCopy, mode1: byte(m)})
		for s := 4; s <= 18; s++ {
			add(codeEntry{type1: typCopy, size1: byte(s), mode1: byte(m)})
		}
	}
	// 4. ADD 1..4 + COPY 4..6, modes 0..5.
	for as := 1; as <= 4; as++ {
		for m := 0; m < 6; m++ {
			for cs := 4; cs <= 6; cs++ {
				add(codeEntry{type1: typAdd, size1: byte(as), type2: typCopy, size2: byte(cs), mode2: byte(m)})
			}
		}
	}
	// 5. ADD 1..4 + COPY 4, modes 6..8.
	for as := 1; as <= 4; as++ {
		for m := 6; m < 9; m++ {
			add(codeEntry{type1: typAdd, size1: byte(as), type2: typCopy, size2: 4, mode2: byte(m)})
		}
	}
	// 6. COPY 4, modes 0..8 + ADD 1.
	for m := 0; m < 9; m++ {
		add(codeEntry{type1: typCopy, size1: 4, mode1: byte(m), type2: typAdd, size2: 1})
	}
	if i != 256 {
		panic(fmt.Sprintf("vcdiff: default table has %d entries", i))
	}
	return t
}

// singleIndex maps (type, size, mode) of single-instruction entries to their
// table index, for the encoder.
var singleIndex = buildSingleIndex()

func buildSingleIndex() map[[3]byte]byte {
	m := make(map[[3]byte]byte)
	for i := 255; i >= 0; i-- {
		e := defaultTable[i]
		if e.type2 == typNoop && e.type1 != typNoop {
			m[[3]byte{e.type1, e.size1, e.mode1}] = byte(i)
		}
	}
	return m
}

// appendVarint appends the RFC 3284 big-endian base-128 integer encoding
// (NOT the little-endian varint of encoding/binary).
func appendVarint(b []byte, v uint64) []byte {
	var tmp [10]byte
	n := len(tmp)
	tmp[n-1] = byte(v & 0x7F)
	v >>= 7
	for v > 0 {
		n--
		tmp[n-1] = byte(v&0x7F) | 0x80
		v >>= 7
	}
	return append(b, tmp[n-1:]...)
}

// readVarint consumes an RFC 3284 integer.
func readVarint(b []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(b); i++ {
		if i >= 9 {
			return 0, nil, ErrCorrupt
		}
		v = v<<7 | uint64(b[i]&0x7F)
		if b[i]&0x80 == 0 {
			return v, b[i+1:], nil
		}
	}
	return 0, nil, ErrCorrupt
}

// ErrCorrupt reports a malformed VCDIFF stream.
var ErrCorrupt = errors.New("vcdiff: corrupt stream")

// addrCache implements the RFC 3284 §5.1 near/same caches.
type addrCache struct {
	near     [sNear]int
	same     [sSame * 256]int
	nextNear int
}

func (c *addrCache) update(addr int) {
	c.near[c.nextNear] = addr
	c.nextNear = (c.nextNear + 1) % sNear
	c.same[addr%(sSame*256)] = addr
}

// encodeAddr picks the cheapest mode for addr (here = current position in
// the combined address space) and returns (mode, value, isSameMode).
func (c *addrCache) encodeAddr(addr, here int) (mode byte, value int, same bool) {
	// VCD_SELF.
	bestMode, bestVal := byte(0), addr
	// VCD_HERE.
	if v := here - addr; varintLen(uint64(v)) < varintLen(uint64(bestVal)) {
		bestMode, bestVal = 1, v
	}
	for i := 0; i < sNear; i++ {
		if v := addr - c.near[i]; v >= 0 && varintLen(uint64(v)) < varintLen(uint64(bestVal)) {
			bestMode, bestVal = byte(2+i), v
		}
	}
	if c.same[addr%(sSame*256)] == addr {
		return byte(2 + sNear + addr/256%sSame), addr % 256, true
	}
	return bestMode, bestVal, false
}

// decodeAddr reverses encodeAddr given the mode.
func (c *addrCache) decodeAddr(mode byte, here int, addrSection []byte) (addr int, rest []byte, err error) {
	switch {
	case mode == 0: // SELF
		v, rest, err := readVarint(addrSection)
		return int(v), rest, err
	case mode == 1: // HERE
		v, rest, err := readVarint(addrSection)
		return here - int(v), rest, err
	case int(mode) < 2+sNear: // near
		v, rest, err := readVarint(addrSection)
		return c.near[mode-2] + int(v), rest, err
	default: // same
		if len(addrSection) == 0 {
			return 0, nil, ErrCorrupt
		}
		b := int(addrSection[0])
		return c.same[int(mode-2-sNear)*256+b], addrSection[1:], nil
	}
}

func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		n++
		v >>= 7
	}
	return n
}

// Encode produces a VCDIFF delta of target relative to source.
func Encode(source, target []byte) []byte {
	ops := delta.Parse(source, target)

	var data, inst, addrs []byte
	cache := &addrCache{}
	pos := 0 // position in target

	emitCopy := func(length, addr int) {
		here := len(source) + pos
		mode, val, same := cache.encodeAddr(addr, here)
		// Table sizes 4..18 inline; otherwise size 0 + explicit size.
		if length >= 4 && length <= 18 {
			inst = append(inst, singleIndex[[3]byte{typCopy, byte(length), mode}])
		} else {
			inst = append(inst, singleIndex[[3]byte{typCopy, 0, mode}])
			inst = appendVarint(inst, uint64(length))
		}
		if same {
			addrs = append(addrs, byte(val))
		} else {
			addrs = appendVarint(addrs, uint64(val))
		}
		cache.update(addr)
	}
	emitAdd := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n <= 17 {
				inst = append(inst, singleIndex[[3]byte{typAdd, byte(n), 0}])
			} else {
				inst = append(inst, singleIndex[[3]byte{typAdd, 0, 0}])
				inst = appendVarint(inst, uint64(n))
			}
			data = append(data, lit[:n]...)
			lit = lit[n:]
		}
	}

	for _, o := range ops {
		if o.Literal != nil {
			emitAdd(o.Literal)
			pos += len(o.Literal)
			continue
		}
		var addr int
		if o.FromRef {
			addr = o.RefPos
		} else {
			addr = len(source) + (pos - o.Dist)
		}
		// RFC 3284 forbids a copy from reading at or past "here"; our
		// parser's self-copies can overlap (addr+len > here), which VCDIFF
		// explicitly permits (§5.3 example) as long as addr < here.
		emitCopy(o.Length, addr)
		pos += o.Length
	}

	// Assemble: header + one window.
	out := append([]byte(nil), magic...)
	out = append(out, 0) // hdr_indicator: no secondary compression, no app data
	var win []byte
	win = append(win, vcdSource)
	win = appendVarint(win, uint64(len(source))) // source segment length
	win = appendVarint(win, 0)                   // source segment position
	var body []byte
	body = appendVarint(body, uint64(len(target)))
	body = append(body, 0) // delta_indicator
	body = appendVarint(body, uint64(len(data)))
	body = appendVarint(body, uint64(len(inst)))
	body = appendVarint(body, uint64(len(addrs)))
	body = append(body, data...)
	body = append(body, inst...)
	body = append(body, addrs...)
	win = appendVarint(win, uint64(len(body)))
	win = append(win, body...)
	return append(out, win...)
}

// Decode applies a VCDIFF delta produced by Encode (or any conforming
// single-window encoder using the default code table) to source.
func Decode(source, enc []byte) ([]byte, error) {
	if len(enc) < 5 || enc[0] != magic[0] || enc[1] != magic[1] || enc[2] != magic[2] {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if enc[3] != 0 {
		return nil, fmt.Errorf("vcdiff: unsupported version %d", enc[3])
	}
	hdrIndicator := enc[4]
	if hdrIndicator != 0 {
		return nil, fmt.Errorf("vcdiff: unsupported header features 0x%x", hdrIndicator)
	}
	rest := enc[5:]

	var out []byte
	for len(rest) > 0 {
		if len(rest) < 1 {
			return nil, ErrCorrupt
		}
		winIndicator := rest[0]
		rest = rest[1:]
		src := source
		if winIndicator&vcdSource != 0 {
			segLen, r, err := readVarint(rest)
			if err != nil {
				return nil, err
			}
			segPos, r, err := readVarint(r)
			if err != nil {
				return nil, err
			}
			rest = r
			if segPos+segLen > uint64(len(source)) {
				return nil, fmt.Errorf("%w: source segment out of range", ErrCorrupt)
			}
			src = source[segPos : segPos+segLen]
		} else if winIndicator&vcdTarget != 0 {
			return nil, errors.New("vcdiff: VCD_TARGET windows not supported")
		} else {
			src = nil
		}
		deltaLen, r, err := readVarint(rest)
		if err != nil {
			return nil, err
		}
		if deltaLen > uint64(len(r)) {
			return nil, ErrCorrupt
		}
		rest = r[deltaLen:]
		win, err := decodeWindow(src, r[:deltaLen])
		if err != nil {
			return nil, err
		}
		out = append(out, win...)
	}
	return out, nil
}

// decodeWindow decodes one window body.
func decodeWindow(src, body []byte) ([]byte, error) {
	targetLen, body, err := readVarint(body)
	if err != nil {
		return nil, err
	}
	if targetLen > 1<<32 {
		return nil, fmt.Errorf("%w: implausible window size", ErrCorrupt)
	}
	if len(body) < 1 || body[0] != 0 {
		return nil, fmt.Errorf("vcdiff: unsupported delta_indicator")
	}
	body = body[1:]
	dataLen, body, err := readVarint(body)
	if err != nil {
		return nil, err
	}
	instLen, body, err := readVarint(body)
	if err != nil {
		return nil, err
	}
	addrLen, body, err := readVarint(body)
	if err != nil {
		return nil, err
	}
	if dataLen+instLen+addrLen != uint64(len(body)) {
		return nil, fmt.Errorf("%w: section lengths", ErrCorrupt)
	}
	data := body[:dataLen]
	inst := body[dataLen : dataLen+instLen]
	addrs := body[dataLen+instLen:]

	out := make([]byte, 0, targetLen)
	cache := &addrCache{}

	apply := func(typ, size, mode byte) error {
		var length int
		if size == 0 && typ != typNoop {
			v, r, err := readVarint(inst)
			if err != nil {
				return err
			}
			inst = r
			length = int(v)
		} else {
			length = int(size)
		}
		switch typ {
		case typNoop:
			return nil
		case typAdd:
			if length > len(data) {
				return ErrCorrupt
			}
			out = append(out, data[:length]...)
			data = data[length:]
		case typRun:
			if len(data) < 1 {
				return ErrCorrupt
			}
			b := data[0]
			data = data[1:]
			for i := 0; i < length; i++ {
				out = append(out, b)
			}
		case typCopy:
			here := len(src) + len(out)
			addr, r, err := cache.decodeAddr(mode, here, addrs)
			if err != nil {
				return err
			}
			addrs = r
			if addr < 0 || addr >= here || length < 0 {
				return fmt.Errorf("%w: copy address %d (here %d)", ErrCorrupt, addr, here)
			}
			cache.update(addr)
			for i := 0; i < length; i++ {
				p := addr + i
				if p < len(src) {
					out = append(out, src[p])
				} else if p-len(src) < len(out) {
					out = append(out, out[p-len(src)])
				} else {
					return fmt.Errorf("%w: copy beyond produced data", ErrCorrupt)
				}
			}
		}
		return nil
	}

	for len(inst) > 0 {
		e := defaultTable[inst[0]]
		inst = inst[1:]
		if err := apply(e.type1, e.size1, e.mode1); err != nil {
			return nil, err
		}
		if err := apply(e.type2, e.size2, e.mode2); err != nil {
			return nil, err
		}
	}
	if uint64(len(out)) != targetLen {
		return nil, fmt.Errorf("%w: produced %d bytes, want %d", ErrCorrupt, len(out), targetLen)
	}
	return out, nil
}

// CompressedSize reports the VCDIFF delta size of target against source.
func CompressedSize(source, target []byte) int {
	return len(Encode(source, target))
}
