package vcdiff

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary inputs must never panic or over-allocate.
func FuzzDecode(f *testing.F) {
	src := []byte("source bytes for the fuzzing corpus, with repetition repetition")
	f.Add(src, Encode(src, []byte("target derived from the source bytes, with repetition")))
	f.Add([]byte{}, []byte{0xD6, 0xC3, 0xC4, 0x00, 0x00})
	f.Add(src, []byte("garbage"))
	f.Fuzz(func(t *testing.T, source, enc []byte) {
		out, err := Decode(source, enc)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("implausible output size %d", len(out))
		}
	})
}

// FuzzEncodeDecode: every pair must round-trip through the RFC 3284 format.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte("src"), []byte("target text"))
	f.Add([]byte{}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, source, target []byte) {
		if len(source) > 1<<16 || len(target) > 1<<16 {
			t.Skip()
		}
		got, err := Decode(source, Encode(source, target))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("round trip mismatch")
		}
	})
}
