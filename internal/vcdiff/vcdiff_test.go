package vcdiff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
	"msync/internal/delta"
)

func checkRoundTrip(t *testing.T, source, target []byte) {
	t.Helper()
	enc := Encode(source, target)
	got, err := Decode(source, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch (%d vs %d bytes)", len(got), len(target))
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := []struct{ src, tgt string }{
		{"", ""},
		{"", "brand new"},
		{"old stuff", ""},
		{"identical content here", "identical content here"},
		{"hello world", "hello brave new world"},
		{"x", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}, // overlapping copy
		{"abcdefgh", "abcdefghabcdefghabcdefgh"},
	}
	for _, c := range cases {
		checkRoundTrip(t, []byte(c.src), []byte(c.tgt))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(source, target []byte) bool {
		enc := Encode(source, target)
		got, err := Decode(source, enc)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSimilar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := corpus.SourceText(rng, 2000+rng.Intn(10000))
		em := corpus.EditModel{BurstsPer32KB: 6, BurstEdits: 4, EditSize: 40, BurstSpread: 200}
		tgt := em.Apply(rng, src)
		enc := Encode(src, tgt)
		got, err := Decode(src, enc)
		return err == nil && bytes.Equal(got, tgt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFormat(t *testing.T) {
	enc := Encode([]byte("source"), []byte("target"))
	if enc[0] != 0xD6 || enc[1] != 0xC3 || enc[2] != 0xC4 || enc[3] != 0x00 {
		t.Fatalf("bad magic/version: % x", enc[:4])
	}
	if enc[4] != 0 {
		t.Fatalf("hdr_indicator = %d", enc[4])
	}
	if enc[5]&vcdSource == 0 {
		t.Fatalf("win_indicator = %d, want VCD_SOURCE", enc[5])
	}
}

func TestDefaultTableLayout(t *testing.T) {
	// Spot-check the RFC 3284 §5.6 table landmarks.
	if defaultTable[0].type1 != typRun {
		t.Fatal("entry 0 must be RUN")
	}
	if e := defaultTable[1]; e.type1 != typAdd || e.size1 != 0 {
		t.Fatal("entry 1 must be ADD 0")
	}
	if e := defaultTable[18]; e.type1 != typAdd || e.size1 != 17 {
		t.Fatal("entry 18 must be ADD 17")
	}
	if e := defaultTable[19]; e.type1 != typCopy || e.size1 != 0 || e.mode1 != 0 {
		t.Fatal("entry 19 must be COPY 0 mode 0")
	}
	if e := defaultTable[35]; e.type1 != typCopy || e.size1 != 0 || e.mode1 != 1 {
		t.Fatalf("entry 35 must be COPY 0 mode 1, got %+v", e)
	}
	if e := defaultTable[163]; e.type1 != typAdd || e.size1 != 1 || e.type2 != typCopy || e.size2 != 4 || e.mode2 != 0 {
		t.Fatalf("entry 163 must be ADD1+COPY4m0, got %+v", e)
	}
	if e := defaultTable[255]; e.type1 != typCopy || e.size1 != 4 || e.mode1 != 8 || e.type2 != typAdd || e.size2 != 1 {
		t.Fatalf("entry 255 must be COPY4m8+ADD1, got %+v", e)
	}
}

func TestVarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 40} {
		enc := appendVarint(nil, v)
		got, rest, err := readVarint(enc)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("varint %d: got %d err %v", v, got, err)
		}
	}
	// RFC example: 123456789 encodes as 0xBA 0xEF 0x9A 0x15.
	enc := appendVarint(nil, 123456789)
	if !bytes.Equal(enc, []byte{0xBA, 0xEF, 0x9A, 0x15}) {
		t.Fatalf("RFC varint example: % x", enc)
	}
}

// TestDecodeRunInstruction: our encoder never emits RUN (runs become
// overlapping self-copies), but a conforming decoder must accept streams
// from encoders that do. Hand-craft one.
func TestDecodeRunInstruction(t *testing.T) {
	// Window body: target len 6, delta_indicator 0,
	// data: the run byte 'x' plus literals "ab",
	// inst: [RUN len=4][ADD len=2], addr: empty.
	inst := []byte{0}
	inst = appendVarint(inst, 4) // RUN size 0 -> explicit 4
	inst = append(inst, singleIndex[[3]byte{typAdd, 2, 0}])
	data := []byte{'x', 'a', 'b'}

	var body []byte
	body = appendVarint(body, 6) // target window length
	body = append(body, 0)       // delta_indicator
	body = appendVarint(body, uint64(len(data)))
	body = appendVarint(body, uint64(len(inst)))
	body = appendVarint(body, 0)
	body = append(body, data...)
	body = append(body, inst...)

	var win []byte
	win = append(win, 0) // win_indicator: no source
	win = appendVarint(win, uint64(len(body)))
	win = append(win, body...)

	enc := append(append([]byte(nil), magic...), 0)
	enc = append(enc, win...)

	got, err := Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "xxxxab" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := corpus.SourceText(rng, 4000)
	tgt := corpus.SourceText(rng, 4000)
	enc := Encode(src, tgt)
	failures := 0
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), enc...)
		switch trial % 2 {
		case 0:
			bad = bad[:rng.Intn(len(bad))]
		default:
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		}
		if _, err := Decode(src, bad); err != nil {
			failures++
		}
	}
	if failures < 100 {
		t.Fatalf("only %d/200 corruptions detected", failures)
	}
	// Garbage input.
	if _, err := Decode(src, []byte("not a vcdiff stream")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(src, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

// TestCompetitiveWithDelta: VCDIFF (no entropy stage) should be in the same
// ballpark as our Huffman-coded delta on similar files — a bit larger, far
// below the raw size.
func TestCompetitiveWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := corpus.SourceText(rng, 100_000)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 60, BurstSpread: 300}
	tgt := em.Apply(rng, src)
	v := CompressedSize(src, tgt)
	d := delta.CompressedSize(src, tgt)
	if v > len(tgt)/4 {
		t.Fatalf("vcdiff %d bytes for a lightly-edited %d-byte file", v, len(tgt))
	}
	t.Logf("vcdiff %d vs delta %d bytes (target %d)", v, d, len(tgt))
}

func BenchmarkEncode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	src := corpus.SourceText(rng, 64<<10)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	tgt := em.Apply(rng, src)
	b.SetBytes(int64(len(tgt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(src, tgt)
	}
}
