// Package stats implements the cost accounting used throughout the
// experiments: bytes by direction and protocol phase, roundtrip counts, and a
// link model converting costs into transfer-time estimates.
//
// Bandwidth is the paper's primary metric; all experiment tables are rendered
// from Costs values collected by the protocol engines.
package stats

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Direction of a transfer, from the client's point of view.
type Direction int

const (
	// C2S is client-to-server traffic (e.g. verification hashes).
	C2S Direction = iota
	// S2C is server-to-client traffic (e.g. block hashes, deltas).
	S2C
	numDirections
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case C2S:
		return "c2s"
	case S2C:
		return "s2c"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Phase identifies the protocol phase a byte was spent in.
type Phase int

const (
	// PhaseControl covers handshakes, manifests and per-file verdicts.
	PhaseControl Phase = iota
	// PhaseMap covers map construction: hashes, candidate bitmaps,
	// verification hashes and confirmation bitmaps.
	PhaseMap
	// PhaseDelta covers the final delta transfer.
	PhaseDelta
	// PhaseFull covers whole files sent because syncing could not help
	// (new files, fallbacks).
	PhaseFull
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseControl:
		return "control"
	case PhaseMap:
		return "map"
	case PhaseDelta:
		return "delta"
	case PhaseFull:
		return "full"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Costs accumulates protocol costs. The zero value is ready to use.
// Costs is not safe for concurrent use; each session keeps its own and merges.
type Costs struct {
	bytes      [numDirections][numPhases]int64
	Roundtrips int
	// Files synchronized via the map+delta path.
	FilesSynced int
	// Files skipped because fingerprints matched.
	FilesUnchanged int
	// Files transferred whole (new at the client, or fallback).
	FilesFull int
	// Files updated by a precomputed journal delta (versioned store path).
	FilesJournal int
	// Files whose map construction ran in CDC (content-defined chunking)
	// mode, and the content-defined chunks hashed for them (both sides'
	// engines counted on whichever side merges).
	FilesCDC  int
	CDCChunks int64
	// Journal fast-path outcomes on the server: a hit serves the session
	// from the version store, a miss falls back to the full protocol.
	JournalHits   int64
	JournalMisses int64
	// Merkle-descent roundtrips within tree-manifest change detection
	// (a subset of Roundtrips; both sides count each TREE exchange once).
	TreeRounds int
	// Cross-file matching outcomes (tree mode): FilesRenamed counts files
	// materialized by copying a local whole-file MD4 match instead of any
	// transfer, RenameBytesSaved their total size, FilesRebased files
	// synced against an alternate local basis named by a want hint.
	FilesRenamed     int
	RenameBytesSaved int64
	FilesRebased     int
	// Candidate/verification bookkeeping for harvest-rate reporting.
	HashesSent         int64
	CandidatesFound    int64
	MatchesConfirmed   int64
	FalseCandidates    int64
	ContinuationHashes int64
	// Local hashing work and signature-cache activity (see internal/sigcache).
	// BlockHashesComputed counts block hashes actually computed by engines
	// (cache hits avoid them); BytesHashed counts bytes fed through hash
	// functions for manifests and block levels.
	BlockHashesComputed int64
	BytesHashed         int64
	CacheHits           int64
	CacheMisses         int64
	CacheEvictions      int64
}

// Add records n payload bytes in the given direction and phase.
func (c *Costs) Add(d Direction, p Phase, n int) {
	c.bytes[d][p] += int64(n)
}

// Bytes reports accumulated bytes for (direction, phase).
func (c *Costs) Bytes(d Direction, p Phase) int64 { return c.bytes[d][p] }

// DirTotal reports total bytes in a direction.
func (c *Costs) DirTotal(d Direction) int64 {
	var t int64
	for p := Phase(0); p < numPhases; p++ {
		t += c.bytes[d][p]
	}
	return t
}

// PhaseTotal reports total bytes in a phase, both directions.
func (c *Costs) PhaseTotal(p Phase) int64 {
	return c.bytes[C2S][p] + c.bytes[S2C][p]
}

// Total reports all bytes in both directions.
func (c *Costs) Total() int64 { return c.DirTotal(C2S) + c.DirTotal(S2C) }

// Merge adds other into c.
func (c *Costs) Merge(other *Costs) {
	for d := Direction(0); d < numDirections; d++ {
		for p := Phase(0); p < numPhases; p++ {
			c.bytes[d][p] += other.bytes[d][p]
		}
	}
	c.Roundtrips += other.Roundtrips
	c.FilesSynced += other.FilesSynced
	c.FilesUnchanged += other.FilesUnchanged
	c.FilesFull += other.FilesFull
	c.FilesJournal += other.FilesJournal
	c.FilesCDC += other.FilesCDC
	c.CDCChunks += other.CDCChunks
	c.JournalHits += other.JournalHits
	c.JournalMisses += other.JournalMisses
	c.TreeRounds += other.TreeRounds
	c.FilesRenamed += other.FilesRenamed
	c.RenameBytesSaved += other.RenameBytesSaved
	c.FilesRebased += other.FilesRebased
	c.HashesSent += other.HashesSent
	c.CandidatesFound += other.CandidatesFound
	c.MatchesConfirmed += other.MatchesConfirmed
	c.FalseCandidates += other.FalseCandidates
	c.ContinuationHashes += other.ContinuationHashes
	c.BlockHashesComputed += other.BlockHashesComputed
	c.BytesHashed += other.BytesHashed
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.CacheEvictions += other.CacheEvictions
}

// HarvestRate reports the fraction of sent hashes that ended in confirmed
// matches (the paper's §6.2 "harvest rate"), or 0 if none were sent.
func (c *Costs) HarvestRate() float64 {
	if c.HashesSent == 0 {
		return 0
	}
	return float64(c.MatchesConfirmed) / float64(c.HashesSent)
}

// String renders a compact multi-line summary.
func (c *Costs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %s (s2c %s, c2s %s), %d roundtrips\n",
		FormatBytes(c.Total()), FormatBytes(c.DirTotal(S2C)), FormatBytes(c.DirTotal(C2S)), c.Roundtrips)
	for p := Phase(0); p < numPhases; p++ {
		if c.PhaseTotal(p) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s s2c %-12s c2s %s\n", p,
			FormatBytes(c.bytes[S2C][p]), FormatBytes(c.bytes[C2S][p]))
	}
	fmt.Fprintf(&b, "  files: %d synced, %d unchanged, %d full",
		c.FilesSynced, c.FilesUnchanged, c.FilesFull)
	if c.FilesCDC+int(c.CDCChunks) > 0 {
		fmt.Fprintf(&b, "\n  cdc: %d files, %d chunks hashed", c.FilesCDC, c.CDCChunks)
	}
	if c.FilesJournal+int(c.JournalHits+c.JournalMisses) > 0 {
		fmt.Fprintf(&b, "\n  journal: %d files, %d hits, %d misses",
			c.FilesJournal, c.JournalHits, c.JournalMisses)
	}
	if c.TreeRounds+c.FilesRenamed+c.FilesRebased > 0 {
		fmt.Fprintf(&b, "\n  tree: %d descent rounds; %d renamed locally (%s saved), %d rebased",
			c.TreeRounds, c.FilesRenamed, FormatBytes(c.RenameBytesSaved), c.FilesRebased)
	}
	if c.CacheHits+c.CacheMisses+c.BytesHashed > 0 {
		fmt.Fprintf(&b, "\n  sigcache: %d hits, %d misses, %d evictions; hashed %s in %d block hashes",
			c.CacheHits, c.CacheMisses, c.CacheEvictions,
			FormatBytes(c.BytesHashed), c.BlockHashesComputed)
	}
	return b.String()
}

// MarshalJSON renders the costs as a flat JSON object for tooling:
// "<direction>_<phase>" byte counts plus the counters.
func (c *Costs) MarshalJSON() ([]byte, error) {
	m := map[string]int64{
		"roundtrips":            int64(c.Roundtrips),
		"files_synced":          int64(c.FilesSynced),
		"files_unchanged":       int64(c.FilesUnchanged),
		"files_full":            int64(c.FilesFull),
		"files_journal":         int64(c.FilesJournal),
		"files_cdc":             int64(c.FilesCDC),
		"cdc_chunks":            c.CDCChunks,
		"journal_hits":          c.JournalHits,
		"journal_misses":        c.JournalMisses,
		"tree_rounds":           int64(c.TreeRounds),
		"files_renamed":         int64(c.FilesRenamed),
		"rename_bytes_saved":    c.RenameBytesSaved,
		"files_rebased":         int64(c.FilesRebased),
		"hashes_sent":           c.HashesSent,
		"candidates_found":      c.CandidatesFound,
		"matches_confirmed":     c.MatchesConfirmed,
		"false_candidates":      c.FalseCandidates,
		"continuation_hashes":   c.ContinuationHashes,
		"block_hashes_computed": c.BlockHashesComputed,
		"bytes_hashed":          c.BytesHashed,
		"cache_hits":            c.CacheHits,
		"cache_misses":          c.CacheMisses,
		"cache_evictions":       c.CacheEvictions,
		"total_bytes":           c.Total(),
	}
	for d := Direction(0); d < numDirections; d++ {
		for p := Phase(0); p < numPhases; p++ {
			m[fmt.Sprintf("%s_%s_bytes", d, p)] = c.bytes[d][p]
		}
	}
	return json.Marshal(m)
}

// FormatBytes renders n in KB with one decimal, the unit the paper's tables
// use, switching to MB above 10 MB.
func FormatBytes(n int64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// KB returns n in kibibytes as a float, for table rendering.
func KB(n int64) float64 { return float64(n) / 1024 }

// LinkModel estimates wall-clock transfer time for a half-duplex protocol on
// a link with the given characteristics.
type LinkModel struct {
	// DownBps and UpBps are bandwidths in bytes/second (server→client and
	// client→server respectively, e.g. ADSL-style asymmetric links).
	DownBps, UpBps float64
	// RTT is the round-trip latency.
	RTT time.Duration
}

// Duration estimates total transfer time for the given costs.
func (l LinkModel) Duration(c *Costs) time.Duration {
	if l.DownBps <= 0 || l.UpBps <= 0 {
		return 0
	}
	down := float64(c.DirTotal(S2C)) / l.DownBps
	up := float64(c.DirTotal(C2S)) / l.UpBps
	lat := time.Duration(c.Roundtrips) * l.RTT
	return time.Duration((down+up)*float64(time.Second)) + lat
}
