package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAddAndTotals(t *testing.T) {
	var c Costs
	c.Add(C2S, PhaseControl, 100)
	c.Add(S2C, PhaseMap, 200)
	c.Add(S2C, PhaseDelta, 300)
	c.Add(C2S, PhaseMap, 50)

	if c.Bytes(C2S, PhaseControl) != 100 {
		t.Fatal("Bytes")
	}
	if c.DirTotal(C2S) != 150 || c.DirTotal(S2C) != 500 {
		t.Fatal("DirTotal")
	}
	if c.PhaseTotal(PhaseMap) != 250 {
		t.Fatal("PhaseTotal")
	}
	if c.Total() != 650 {
		t.Fatal("Total")
	}
}

func TestMerge(t *testing.T) {
	var a, b Costs
	a.Add(C2S, PhaseMap, 10)
	a.Roundtrips = 3
	a.FilesSynced = 1
	a.HashesSent = 100
	a.MatchesConfirmed = 40
	b.Add(C2S, PhaseMap, 5)
	b.Add(S2C, PhaseFull, 7)
	b.Roundtrips = 2
	b.FilesUnchanged = 4
	b.HashesSent = 50
	b.MatchesConfirmed = 50

	a.Merge(&b)
	if a.Bytes(C2S, PhaseMap) != 15 || a.Bytes(S2C, PhaseFull) != 7 {
		t.Fatal("bytes")
	}
	if a.Roundtrips != 5 || a.FilesSynced != 1 || a.FilesUnchanged != 4 {
		t.Fatal("counters")
	}
	if a.HarvestRate() != float64(90)/150 {
		t.Fatalf("harvest = %v", a.HarvestRate())
	}
}

func TestHarvestRateZero(t *testing.T) {
	var c Costs
	if c.HarvestRate() != 0 {
		t.Fatal("zero hashes should give zero harvest")
	}
}

func TestString(t *testing.T) {
	var c Costs
	c.Add(S2C, PhaseDelta, 2048)
	c.Roundtrips = 4
	c.FilesSynced = 2
	s := c.String()
	for _, want := range []string{"2.0KB", "4 roundtrips", "delta", "2 synced"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1536, "1.5KB"},
		{20 << 20, "20.0MB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestKB(t *testing.T) {
	if KB(2048) != 2.0 {
		t.Fatal("KB")
	}
}

func TestDirectionPhaseStrings(t *testing.T) {
	if C2S.String() != "c2s" || S2C.String() != "s2c" {
		t.Fatal("direction names")
	}
	if PhaseControl.String() != "control" || PhaseFull.String() != "full" {
		t.Fatal("phase names")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Fatal("unknown direction")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Fatal("unknown phase")
	}
}

func TestLinkModel(t *testing.T) {
	var c Costs
	c.Add(S2C, PhaseDelta, 125_000) // 1s at 125 kB/s
	c.Add(C2S, PhaseMap, 32_000)    // 1s at 32 kB/s
	c.Roundtrips = 10               // 10 * 100ms = 1s

	l := LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 100 * time.Millisecond}
	got := l.Duration(&c)
	want := 3 * time.Second
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Fatalf("Duration = %v, want ~%v", got, want)
	}
	// Degenerate link reports zero rather than dividing by zero.
	if (LinkModel{}).Duration(&c) != 0 {
		t.Fatal("zero link should report 0")
	}
}

func TestMarshalJSON(t *testing.T) {
	var c Costs
	c.Add(S2C, PhaseDelta, 100)
	c.Add(C2S, PhaseMap, 7)
	c.Roundtrips = 3
	c.FilesSynced = 2
	out, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if m["s2c_delta_bytes"] != 100 || m["c2s_map_bytes"] != 7 {
		t.Fatalf("byte fields wrong: %v", m)
	}
	if m["roundtrips"] != 3 || m["files_synced"] != 2 || m["total_bytes"] != 107 {
		t.Fatalf("counter fields wrong: %v", m)
	}
}
