package rolling

// DecAdler is a "modified Adler checksum" with the full property set the
// protocol needs (rolling, composable, decomposable, bit-prefix
// decomposable) — the construction the paper's authors built for their
// prototype (§5.5), reproduced here as an alternative to the polynomial
// family.
//
// It keeps two 32-bit components over a byte-diffusion table T:
//
//	A(s) = Σ T[s[i]]                 mod 2^32
//	B(s) = Σ (m-i)·T[s[i]]           mod 2^32   (m = len(s))
//
// which compose as A(XY) = A(X)+A(Y) and B(XY) = B(X) + |Y|·A(X) + B(Y),
// giving O(1) rolling and exact decomposition. The 64-bit hash value
// bit-interleaves A and B (A in even positions, B in odd), so that the low
// k bits of the value expose ⌈k/2⌉ low bits of A and ⌊k/2⌋ low bits of B —
// and since all component arithmetic is low-bit-causal mod 2^32, truncated
// hashes still decompose. Interleaving also fixes plain Adler's weakness
// that short truncations would only ever see the (order-insensitive) A sum.
type DecAdler struct {
	table [256]uint32
}

// NewDecAdler builds a DecAdler family with a diffusion table from seed.
func NewDecAdler(seed uint64) *DecAdler {
	d := &DecAdler{}
	x := seed
	for i := range d.table {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		d.table[i] = uint32(z) | 1
	}
	return d
}

// DefaultDecAdler returns the process-wide default DecAdler family.
func DefaultDecAdler() *DecAdler { return defaultDecAdler }

var defaultDecAdler = NewDecAdler(DefaultSeed)

// components computes (A, B) for data.
func (d *DecAdler) components(data []byte) (a, b uint32) {
	m := uint32(len(data))
	for i, c := range data {
		t := d.table[c]
		a += t
		b += (m - uint32(i)) * t
	}
	return a, b
}

// interleave packs A into even bit positions and B into odd ones.
func interleave(a, b uint32) uint64 {
	return spread(a) | spread(b)<<1
}

// spread inserts a zero bit between every bit of v (morton encoding).
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact reverses spread.
func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// deinterleave splits a (possibly truncated) hash value back into A and B.
func deinterleave(v uint64) (a, b uint32) {
	return compact(v), compact(v >> 1)
}

// Hash implements Family.
func (d *DecAdler) Hash(data []byte) uint64 {
	a, b := d.components(data)
	return interleave(a, b)
}

// Name implements Family.
func (d *DecAdler) Name() string { return "adler" }

// DeriveRight implements Family. bits of the value give ⌈bits/2⌉ bits of A
// and ⌊bits/2⌋ bits of B; the component arithmetic stays valid at any
// truncation.
func (d *DecAdler) DeriveRight(parent uint64, bits uint, left uint64, rightLen int) uint64 {
	ap, bp := deinterleave(Truncate(parent, bits))
	al, bl := deinterleave(Truncate(left, bits))
	ar := ap - al
	br := bp - bl - uint32(rightLen)*al
	return Truncate(interleave(ar, br), bits)
}

// adlerRoller slides a fixed window.
type adlerRoller struct {
	d      *DecAdler
	window uint32
	a, b   uint32
}

// Roller implements Family.
func (d *DecAdler) Roller(window int) WindowRoller {
	if window <= 0 {
		panic("rolling: window must be positive")
	}
	return &adlerRoller{d: d, window: uint32(window)}
}

func (r *adlerRoller) Init(data []byte) {
	r.a, r.b = r.d.components(data[:r.window])
}

// InitAt seeds the window at position pos of data; see WindowRoller.InitAt.
func (r *adlerRoller) InitAt(data []byte, pos int) {
	r.a, r.b = r.d.components(data[pos : pos+int(r.window)])
}

func (r *adlerRoller) Roll(out, in byte) {
	to, ti := r.d.table[out], r.d.table[in]
	r.a += ti - to
	r.b += r.a - r.window*to
}

func (r *adlerRoller) Sum() uint64 { return interleave(r.a, r.b) }
