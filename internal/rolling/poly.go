// Package rolling implements the hash substrate of the synchronization
// framework: a polynomial (Karp–Rabin style) hash over Z/2^64 that is
// simultaneously rolling, composable, decomposable, and bit-prefix
// decomposable, plus the classic rsync rolling checksum.
//
// The four properties (paper, Section 5.5) are:
//
//   - rolling:      H(s[i+1 : i+m+1]) is computable in O(1) from H(s[i : i+m])
//   - composable:   H(XY) is computable from H(X), H(Y), |Y|
//   - decomposable: H(Y) (and H(X)) is computable from H(XY) and the sibling
//   - bit-prefix:   all of the above hold for the low k bits alone, for any k
//
// Bit-prefix decomposability is what lets the protocol transmit only
// truncated hashes and still suppress one sibling hash per pair: arithmetic
// mod 2^64 (addition, subtraction, multiplication by an odd constant and its
// inverse) never propagates information from high bits to low bits, so the
// low k bits of a derived hash depend only on the low k bits of its inputs.
//
// The paper built a modified Adler checksum with these properties; we use the
// cleaner polynomial construction (see DESIGN.md, substitutions table). Byte
// values are diffused through a fixed 256-entry random table before entering
// the polynomial so that truncations to few bits remain well distributed.
package rolling

// DefaultBase is the default polynomial base. It must be odd so that powers
// of the base are invertible mod 2^64.
const DefaultBase uint64 = 0x9E3779B97F4A7C55

// DefaultSeed seeds the byte-diffusion table. Client and server must agree on
// (base, seed); the protocol pins them in the HELLO exchange.
const DefaultSeed uint64 = 0x1D8AF066D5F8FD4F

// Poly is a polynomial hash family H(s) = sum T[s[i]] * base^(m-1-i) mod 2^64.
type Poly struct {
	base    uint64
	invBase uint64
	table   [256]uint64
}

// NewPoly returns a Poly with the given base (must be odd) and diffusion
// table derived from seed.
func NewPoly(base, seed uint64) *Poly {
	if base%2 == 0 {
		panic("rolling: base must be odd")
	}
	p := &Poly{base: base, invBase: invMod64(base)}
	// SplitMix64 fills the diffusion table deterministically from the seed.
	x := seed
	for i := range p.table {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		// Force odd so even heavily truncated table entries differ.
		p.table[i] = z | 1
	}
	return p
}

// Default returns the process-wide default Poly.
func Default() *Poly { return defaultPoly }

var defaultPoly = NewPoly(DefaultBase, DefaultSeed)

// Base returns the polynomial base.
func (p *Poly) Base() uint64 { return p.base }

// Hash computes the full 64-bit hash of data.
func (p *Poly) Hash(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = h*p.base + p.table[b]
	}
	return h
}

// Pow returns base^n mod 2^64.
func (p *Poly) Pow(n int) uint64 {
	if n < 0 {
		panic("rolling: negative exponent")
	}
	result := uint64(1)
	b := p.base
	for e := uint(n); e > 0; e >>= 1 {
		if e&1 == 1 {
			result *= b
		}
		b *= b
	}
	return result
}

// InvPow returns base^-n mod 2^64.
func (p *Poly) InvPow(n int) uint64 {
	if n < 0 {
		panic("rolling: negative exponent")
	}
	result := uint64(1)
	b := p.invBase
	for e := uint(n); e > 0; e >>= 1 {
		if e&1 == 1 {
			result *= b
		}
		b *= b
	}
	return result
}

// Compose returns H(XY) given hx = H(X), hy = H(Y) and |Y|.
func (p *Poly) Compose(hx, hy uint64, lenY int) uint64 {
	return hx*p.Pow(lenY) + hy
}

// DecomposeRight returns H(Y) given hxy = H(XY), hx = H(X) and |Y|.
func (p *Poly) DecomposeRight(hxy, hx uint64, lenY int) uint64 {
	return hxy - hx*p.Pow(lenY)
}

// DecomposeLeft returns H(X) given hxy = H(XY), hy = H(Y) and |Y|.
func (p *Poly) DecomposeLeft(hxy, hy uint64, lenY int) uint64 {
	return (hxy - hy) * p.InvPow(lenY)
}

// Truncate keeps the low bits of h. bits must be in [1, 64].
func Truncate(h uint64, bits uint) uint64 {
	if bits >= 64 {
		return h
	}
	return h & ((1 << bits) - 1)
}

// invMod64 returns the multiplicative inverse of odd a modulo 2^64 using
// Newton iteration (each step doubles the number of correct low bits).
func invMod64(a uint64) uint64 {
	x := a // 3 correct bits for odd a (a*a ≡ 1 mod 8, so x=a works: a*a mod 8 = 1)
	for i := 0; i < 6; i++ {
		x *= 2 - a*x
	}
	return x
}

// Roller computes the hash of a sliding fixed-size window in O(1) per step.
type Roller struct {
	p      *Poly
	window int
	powTop uint64 // base^(window-1)
	h      uint64
}

// NewRoller returns a Roller for windows of the given size.
func (p *Poly) NewRoller(window int) *Roller {
	if window <= 0 {
		panic("rolling: window must be positive")
	}
	return &Roller{p: p, window: window, powTop: p.Pow(window - 1)}
}

// Window reports the window size.
func (r *Roller) Window() int { return r.window }

// Init computes the hash of the first window. data must have length >= window.
func (r *Roller) Init(data []byte) {
	r.h = r.p.Hash(data[:r.window])
}

// InitAt seeds the window at position pos of data; see WindowRoller.InitAt.
func (r *Roller) InitAt(data []byte, pos int) {
	r.h = r.p.Hash(data[pos : pos+r.window])
}

// Roll slides the window one byte: out leaves on the left, in enters on the
// right.
func (r *Roller) Roll(out, in byte) {
	r.h = (r.h-r.p.table[out]*r.powTop)*r.p.base + r.p.table[in]
}

// Sum returns the hash of the current window.
func (r *Roller) Sum() uint64 { return r.h }

// HashBits is a convenience wrapper: the low `bits` of Hash(data).
func (p *Poly) HashBits(data []byte, bits uint) uint64 {
	return Truncate(p.Hash(data), bits)
}
