package rolling

// Adler is the rsync-style rolling checksum (Tridgell/MacKerras): two 16-bit
// sums packed into a uint32. It is fast and rolls in constant time but is
// weak, which is exactly why rsync pairs it with a strong checksum — and why
// the msync protocol replaces it with the polynomial hash.
type Adler struct {
	a, b   uint32
	window uint32
}

// NewAdler returns a rolling checksum for windows of the given size.
func NewAdler(window int) *Adler {
	if window <= 0 {
		panic("rolling: window must be positive")
	}
	return &Adler{window: uint32(window)}
}

// AdlerSum computes the checksum of p in one pass.
func AdlerSum(p []byte) uint32 {
	var a, b uint32
	n := uint32(len(p))
	for i, c := range p {
		a += uint32(c)
		b += (n - uint32(i)) * uint32(c)
	}
	return a&0xffff | b<<16
}

// Init computes the checksum of the first window of data.
func (ad *Adler) Init(data []byte) {
	ad.a, ad.b = 0, 0
	n := ad.window
	for i := uint32(0); i < n; i++ {
		c := uint32(data[i])
		ad.a += c
		ad.b += (n - i) * c
	}
}

// Roll slides the window one byte.
func (ad *Adler) Roll(out, in byte) {
	ad.a += uint32(in) - uint32(out)
	ad.b += ad.a - ad.window*uint32(out)
}

// Sum returns the current checksum.
func (ad *Adler) Sum() uint32 {
	return ad.a&0xffff | ad.b<<16
}
