package rolling

import "fmt"

// WindowRoller computes the hash of a sliding fixed-size window in O(1) per
// step.
type WindowRoller interface {
	// Init computes the hash of the first window of data.
	Init(data []byte)
	// InitAt seeds the window at [pos, pos+window) of data, exactly as if
	// the roller had been initialized at data's start and rolled forward
	// pos times. It costs one window's worth of hashing — the entry point
	// for parallel shard scans, where each shard re-seeds at its own start
	// instead of rolling through its predecessors' territory.
	InitAt(data []byte, pos int)
	// Roll slides the window one byte: out leaves, in enters.
	Roll(out, in byte)
	// Sum returns the hash of the current window.
	Sum() uint64
}

// Family is a rolling, decomposable, bit-prefix-decomposable hash family —
// the contract the map-construction protocol needs (paper §5.5). Two
// implementations exist: the polynomial hash (Poly) and the modified Adler
// checksum (DecAdler), matching the paper's two prototype hash functions.
type Family interface {
	// Hash computes the full 64-bit hash of data.
	Hash(data []byte) uint64
	// Roller returns a sliding-window hasher consistent with Hash.
	Roller(window int) WindowRoller
	// DeriveRight computes the low `bits` bits of H(right) from the low
	// `bits` bits of H(parent) and at least `bits` bits of H(left), where
	// parent = left ∥ right and right has length rightLen. This is the
	// bit-prefix decomposition that lets the protocol suppress sibling
	// hash transmission.
	DeriveRight(parent uint64, bits uint, left uint64, rightLen int) uint64
	// Name identifies the family on the wire.
	Name() string
}

// Roller adapts Poly's concrete roller to the WindowRoller interface.
func (p *Poly) Roller(window int) WindowRoller { return p.NewRoller(window) }

// DeriveRight implements Family for Poly: H(parent) = H(left)·base^rightLen
// + H(right) in Z/2^64, so the low bits of H(right) follow from the low
// bits of the other two.
func (p *Poly) DeriveRight(parent uint64, bits uint, left uint64, rightLen int) uint64 {
	return Truncate(Truncate(parent, bits)-Truncate(left, bits)*p.Pow(rightLen), bits)
}

// Name implements Family.
func (p *Poly) Name() string { return "poly" }

// FamilyByName returns the named default-seeded hash family.
func FamilyByName(name string) (Family, error) {
	switch name {
	case "", "poly":
		return Default(), nil
	case "adler":
		return DefaultDecAdler(), nil
	default:
		return nil, fmt.Errorf("rolling: unknown hash family %q", name)
	}
}

// Compile-time interface checks.
var (
	_ Family = (*Poly)(nil)
	_ Family = (*DecAdler)(nil)
)
