package rolling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecAdlerRollEqualsRecompute(t *testing.T) {
	d := DefaultDecAdler()
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		window := int(wRaw%60) + 1
		data := randBytes(rng, window+200)
		roller := d.Roller(window)
		roller.Init(data)
		for i := 0; i+window < len(data); i++ {
			if roller.Sum() != d.Hash(data[i:i+window]) {
				return false
			}
			roller.Roll(data[i], data[i+window])
		}
		return roller.Sum() == d.Hash(data[len(data)-window:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDecAdlerDeriveRight: the bit-prefix decomposition property at every
// truncation width, for both families through the same interface.
func TestDeriveRightBothFamilies(t *testing.T) {
	for _, fam := range []Family{Default(), DefaultDecAdler()} {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			f := func(x, y []byte, kRaw uint8) bool {
				if len(y) == 0 {
					y = []byte{0}
				}
				k := uint(kRaw%64) + 1
				parent := fam.Hash(append(append([]byte{}, x...), y...))
				left := fam.Hash(x)
				right := fam.Hash(y)
				got := fam.DeriveRight(parent, k, left, len(y))
				return got == Truncate(right, k)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeriveRightTruncatedInputs: derivation must work when parent and left
// are ALREADY truncated (the wire situation).
func TestDeriveRightTruncatedInputs(t *testing.T) {
	for _, fam := range []Family{Default(), DefaultDecAdler()} {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			f := func(x, y []byte, kRaw uint8) bool {
				if len(y) == 0 {
					y = []byte{1}
				}
				k := uint(kRaw%48) + 1
				parentT := Truncate(fam.Hash(append(append([]byte{}, x...), y...)), k)
				leftT := Truncate(fam.Hash(x), k)
				got := fam.DeriveRight(parentT, k, leftT, len(y))
				return got == Truncate(fam.Hash(y), k)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInterleaveCompact(t *testing.T) {
	f := func(a, b uint32) bool {
		v := interleave(a, b)
		ga, gb := deinterleave(v)
		return ga == a && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecAdlerTruncationSeesBothComponents: low-bit truncations must depend
// on byte ORDER (plain Adler's A-sum does not), which is what the
// interleaving buys.
func TestDecAdlerTruncationSeesBothComponents(t *testing.T) {
	d := DefaultDecAdler()
	a := d.HashBitsAdler([]byte("abcdef"), 8)
	b := d.HashBitsAdler([]byte("fedcba"), 8)
	if a == b {
		t.Fatal("8-bit truncation is order-insensitive")
	}
}

// HashBitsAdler is a tiny test helper: low-bits of the DecAdler hash.
func (d *DecAdler) HashBitsAdler(data []byte, bits uint) uint64 {
	return Truncate(d.Hash(data), bits)
}

func TestDecAdlerDistribution(t *testing.T) {
	d := DefaultDecAdler()
	const bits = 12
	counts := make(map[uint64]int)
	data := make([]byte, 64)
	for i := 0; i < 4096; i++ {
		for j := range data {
			data[j] = byte((i + j) % 7)
		}
		data[i%64] = byte(i)
		counts[Truncate(d.Hash(data), bits)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Adler-style sums are weaker than the polynomial family at short
	// truncations (the paper notes these trade-offs); we only require the
	// distribution to be non-degenerate. The protocol's verification layer
	// absorbs the extra false candidates.
	if max > 96 {
		t.Fatalf("worst 12-bit bucket has %d entries", max)
	}
}

func TestFamilyByName(t *testing.T) {
	for name, want := range map[string]string{"": "poly", "poly": "poly", "adler": "adler"} {
		f, err := FamilyByName(name)
		if err != nil || f.Name() != want {
			t.Fatalf("FamilyByName(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := FamilyByName("sha0"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestDecAdlerRollerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	DefaultDecAdler().Roller(0)
}
