package rolling

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestRollEqualsRecompute: sliding the window must equal hashing from
// scratch at every position.
func TestRollEqualsRecompute(t *testing.T) {
	p := Default()
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		window := int(wRaw%60) + 1
		data := randBytes(rng, window+200)
		roller := p.NewRoller(window)
		roller.Init(data)
		for i := 0; i+window < len(data); i++ {
			if roller.Sum() != p.Hash(data[i:i+window]) {
				return false
			}
			roller.Roll(data[i], data[i+window])
		}
		return roller.Sum() == p.Hash(data[len(data)-window:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestComposeDecompose: H(XY) from H(X), H(Y); and both inverses.
func TestComposeDecompose(t *testing.T) {
	p := Default()
	f := func(x, y []byte) bool {
		hx, hy := p.Hash(x), p.Hash(y)
		hxy := p.Hash(append(append([]byte{}, x...), y...))
		if p.Compose(hx, hy, len(y)) != hxy {
			return false
		}
		if p.DecomposeRight(hxy, hx, len(y)) != hy {
			return false
		}
		return p.DecomposeLeft(hxy, hy, len(y)) == hx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBitPrefixDecomposability: the low k bits of a decomposed hash must be
// derivable from the low k bits of the inputs — the property that lets the
// protocol ship truncated sibling hashes.
func TestBitPrefixDecomposability(t *testing.T) {
	p := Default()
	f := func(x, y []byte, kRaw uint8) bool {
		k := uint(kRaw%64) + 1
		hx, hy := p.Hash(x), p.Hash(y)
		hxy := p.Compose(hx, hy, len(y))
		// Derive low-k of H(Y) using ONLY low-k inputs.
		gotRight := Truncate(Truncate(hxy, k)-Truncate(hx, k)*p.Pow(len(y)), k)
		if gotRight != Truncate(hy, k) {
			return false
		}
		gotLeft := Truncate((Truncate(hxy, k)-Truncate(hy, k))*p.InvPow(len(y)), k)
		return gotLeft == Truncate(hx, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInvPow(t *testing.T) {
	p := Default()
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		if p.Pow(n)*p.InvPow(n) != 1 {
			t.Fatalf("Pow(%d)*InvPow(%d) != 1", n, n)
		}
	}
}

func TestInvMod64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a := rng.Uint64() | 1
		if a*invMod64(a) != 1 {
			t.Fatalf("invMod64(%x) wrong", a)
		}
	}
}

func TestTruncate(t *testing.T) {
	if Truncate(0xFFFFFFFFFFFFFFFF, 4) != 0xF {
		t.Fatal("4-bit")
	}
	if Truncate(0x123, 64) != 0x123 {
		t.Fatal("64-bit identity")
	}
	if Truncate(0xFF, 70) != 0xFF {
		t.Fatal("over-64 clamps to identity")
	}
}

// TestLowBitDistribution: truncated hashes over structured input must not
// collide catastrophically (this is why the byte-diffusion table exists).
func TestLowBitDistribution(t *testing.T) {
	p := Default()
	const bits = 12
	counts := make(map[uint64]int)
	data := make([]byte, 64)
	for i := 0; i < 4096; i++ {
		for j := range data {
			data[j] = byte((i + j) % 7) // highly structured
		}
		data[i%64] = byte(i)
		counts[p.HashBits(data, bits)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// 4096 samples in 4096 buckets: worst bucket should stay small.
	if max > 24 {
		t.Fatalf("worst 12-bit bucket has %d entries (poor distribution)", max)
	}
}

func TestNewPolyRequiresOddBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even base accepted")
		}
	}()
	NewPoly(2, 1)
}

func TestRollerWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	Default().NewRoller(0)
}

// TestAdlerRollEqualsSum mirrors the rsync checksum's rolling property.
func TestAdlerRollEqualsSum(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		window := int(wRaw%100) + 1
		data := randBytes(rng, window+150)
		ad := NewAdler(window)
		ad.Init(data)
		for i := 0; i+window < len(data); i++ {
			if ad.Sum() != AdlerSum(data[i:i+window]) {
				return false
			}
			ad.Roll(data[i], data[i+window])
		}
		return ad.Sum() == AdlerSum(data[len(data)-window:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdlerDetectsChanges(t *testing.T) {
	a := []byte("the quick brown fox jumps over the lazy dog")
	b := append([]byte(nil), a...)
	b[10] ^= 1
	if AdlerSum(a) == AdlerSum(b) {
		t.Fatal("single-bit flip not detected")
	}
	// Permutation weakness is expected of Adler (paper §5.4 mentions it):
	// the 'a' component is order-independent, the 'b' component is not.
	c := []byte("ab")
	d := []byte("ba")
	if AdlerSum(c) == AdlerSum(d) {
		t.Fatal("adjacent swap collided in both components")
	}
}

// TestInitAtEqualsRolledInit: seeding a roller mid-buffer must land in the
// same state as initializing at the start and rolling forward — for both
// families, at several offsets. This is the invariant parallel shard scans
// rely on.
func TestInitAtEqualsRolledInit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randBytes(rng, 4096)
	for _, name := range []string{"poly", "adler"} {
		fam, err := FamilyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{1, 16, 128} {
			rolled := fam.Roller(window)
			rolled.Init(data)
			for pos := 0; pos+window <= len(data); pos++ {
				if pos%257 == 0 { // sample offsets, keep the test fast
					seeded := fam.Roller(window)
					seeded.InitAt(data, pos)
					if seeded.Sum() != rolled.Sum() {
						t.Fatalf("%s w=%d pos=%d: InitAt %x != rolled %x",
							name, window, pos, seeded.Sum(), rolled.Sum())
					}
				}
				if pos+window < len(data) {
					rolled.Roll(data[pos], data[pos+window])
				}
			}
		}
	}
}

func BenchmarkPolyHash4K(b *testing.B) {
	p := Default()
	data := randBytes(rand.New(rand.NewSource(1)), 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		_ = p.Hash(data)
	}
}

func BenchmarkPolyRoll(b *testing.B) {
	p := Default()
	data := randBytes(rand.New(rand.NewSource(1)), 1<<16)
	r := p.NewRoller(512)
	r.Init(data)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		j := i % (len(data) - 513)
		r.Roll(data[j], data[j+512])
	}
}

func BenchmarkAdlerRoll(b *testing.B) {
	data := randBytes(rand.New(rand.NewSource(1)), 1<<16)
	ad := NewAdler(512)
	ad.Init(data)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		j := i % (len(data) - 513)
		ad.Roll(data[j], data[j+512])
	}
}

// BenchmarkWindowScan measures full windowed-scan throughput (Init once,
// then roll across the buffer, consuming Sum at every position) at the
// protocol's extreme block sizes — the unit of work that scanOld sharding
// splits across workers. Comparing the per-byte rates at b_min and b_max
// against BenchmarkSeedShard quantifies the overlap cost a shard pays to
// re-seed its window.
func BenchmarkWindowScan(b *testing.B) {
	data := randBytes(rand.New(rand.NewSource(3)), 1<<20)
	for _, tc := range []struct {
		fam    string
		window int
	}{
		{"poly", 128}, {"poly", 2048}, {"adler", 128}, {"adler", 2048},
	} {
		fam, err := FamilyByName(tc.fam)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s-b%d", tc.fam, tc.window), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var sink uint64
			for i := 0; i < b.N; i++ {
				r := fam.Roller(tc.window)
				r.Init(data)
				for pos := 0; pos+tc.window < len(data); pos++ {
					sink ^= r.Sum()
					r.Roll(data[pos], data[pos+tc.window])
				}
				sink ^= r.Sum()
			}
			benchSink = sink
		})
	}
}

// BenchmarkSeedShard measures the one-off InitAt cost a shard pays at its
// start (the blockSize-1 overlap read), per seeding.
func BenchmarkSeedShard(b *testing.B) {
	data := randBytes(rand.New(rand.NewSource(4)), 1<<20)
	for _, window := range []int{128, 2048} {
		b.Run(fmt.Sprintf("poly-b%d", window), func(b *testing.B) {
			r := Default().NewRoller(window)
			for i := 0; i < b.N; i++ {
				r.InitAt(data, (i*4096+1)%(len(data)-window))
			}
			benchSink = r.Sum()
		})
	}
}

var benchSink uint64
