// Package store implements the server's versioned collection store: an
// append-only, checksummed history of collection snapshots kept next to the
// live tree. Each Snapshot captures the full manifest of a version plus the
// content needed to reconstruct it; consecutive versions share content via a
// blob index keyed by file checksum, and modified files are stored as
// block-level deltas against their previous version (internal/delta), so the
// history costs roughly the size of the change stream, not of the tree.
//
// Layout on disk (all files under the store directory):
//
//	journal       append-only record log; the commit point of every version
//	vNNNNNNNN.seg content blobs written by version NNNNNNNN
//	rNNNNNNNN.seg rescue blobs written by garbage collection
//
// Every journal record is framed as
//
//	[4B magic "msj1"][4B little-endian payload length][4B CRC-32 of payload][payload]
//
// and every blob carries its own CRC-32 in the journal's blob table. A
// version exists if and only if its record is fully present in the journal
// with a valid checksum: segments are written and fsynced before the record
// is appended, so a crash at any point leaves a journal whose valid prefix
// describes only fully committed versions. Replay stops at the first
// corrupt or truncated record and truncates the tail; damaged segment data
// is detected by CRC on read and surfaces as a journal-delta miss (full
// protocol fallback), never as an error on the sync path.
//
// Garbage collection drops oldest-first whole versions while the segment
// bytes exceed the configured budget, rescuing blobs still reachable from
// surviving versions into rescue segments. The latest version is never
// evicted.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/wire"
)

// Entry is one manifest row: a path with its length and whole-file checksum.
// It mirrors collection.ManifestEntry without importing the package (the
// dependency points the other way: collection consumes store).
type Entry struct {
	Path string
	Len  int
	Sum  [md4.Size]byte
}

// Change ops in a Delta, from the base version's point of view.
const (
	// OpModify: the path exists in both versions with different content.
	OpModify byte = iota
	// OpAdd: the path is new since the base version.
	OpAdd
	// OpDelete: the path was removed since the base version.
	OpDelete
)

// Change describes one path's evolution between a Delta's base and current
// versions, with the payload a client needs to apply it.
type Change struct {
	// Op is OpModify, OpAdd or OpDelete.
	Op byte
	// Len and Sum describe the current content (zero for OpDelete).
	Len int
	Sum [md4.Size]byte
	// Payload is delta.Encode(base content, current content) for OpModify
	// and delta.Compress(current content) for OpAdd; nil for OpDelete.
	Payload []byte
}

// Delta is a precomputed journal delta between two stored versions.
type Delta struct {
	Base, Current uint64
	// Changes maps each changed path to its Change.
	Changes map[string]*Change
	// Added lists the OpAdd paths in sorted order.
	Added []string
}

// Options configures a Store.
type Options struct {
	// Budget caps total segment bytes; once exceeded, oldest versions are
	// garbage-collected (the latest version is never evicted). 0 = unlimited.
	Budget int64
	// MaxChain bounds delta-chain depth before a full blob is forced.
	// 0 selects the default of 8.
	MaxChain int
}

// Stats is a point-in-time summary of the store, for gauges.
type Stats struct {
	// Versions is the number of committed versions currently retained.
	Versions int
	// Latest is the newest version number (0 when empty).
	Latest uint64
	// SegmentBytes is the total size of all live segment files.
	SegmentBytes int64
	// JournalBytes is the size of the journal's valid prefix.
	JournalBytes int64
}

// ErrUnknownContent is returned by Content for checksums the store cannot
// resolve (never stored, garbage-collected, or damaged on disk).
var ErrUnknownContent = errors.New("store: unknown content")

const (
	recVersion = 1
	recGC      = 2

	blobFull  = 0
	blobDelta = 1

	defaultMaxChain = 8
	// maxRecord bounds a single journal record payload on replay; larger
	// values mean a corrupt length field.
	maxRecord = 1 << 30
)

var journalMagic = [4]byte{'m', 's', 'j', '1'}

type blobRef struct {
	seg   string
	off   int64
	n     int64
	crc   uint32
	kind  byte
	base  [md4.Size]byte // delta base checksum (blobDelta only)
	chain int            // delta-chain depth; 0 for full blobs
}

type version struct {
	n        uint64
	digest   [md4.Size]byte
	manifest []Entry
}

// Store is a versioned collection store. All methods are safe for concurrent
// use; operations serialize on one mutex (reads hit the local disk only).
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	jf       *os.File
	jsize    int64
	versions []*version // ascending by n
	blobs    map[[md4.Size]byte]blobRef
	segs     map[string]int64 // live segment file -> size
	lastSeq  uint64           // highest version number ever seen (even dropped)
	gcSeq    uint64           // rescue segment sequence
}

// Open opens (creating if needed) the store in dir and replays its journal.
// Corrupt or truncated journal tails are discarded; versions whose own
// segment is missing or short are dropped from the tail so that the latest
// retained version is always reconstructible.
func Open(dir string, opt Options) (*Store, error) {
	if opt.MaxChain <= 0 {
		opt.MaxChain = defaultMaxChain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		opt:   opt,
		jf:    jf,
		blobs: make(map[[md4.Size]byte]blobRef),
		segs:  make(map[string]int64),
	}
	valid, err := s.replay()
	if err != nil {
		jf.Close()
		return nil, err
	}
	// Discard the corrupt/partial tail so future appends extend the valid
	// prefix (appending after garbage would hide the new records).
	if err := jf.Truncate(valid); err != nil {
		jf.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := jf.Seek(valid, io.SeekStart); err != nil {
		jf.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.jsize = valid
	s.validateSegments()
	s.dropUnservableTail()
	s.removeStraySegments()
	return s, nil
}

// Close releases the journal handle. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jf.Close()
}

// replay reads the journal from the start, applying every structurally valid
// record, and returns the byte offset of the valid prefix.
func (s *Store) replay() (int64, error) {
	if _, err := s.jf.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var off int64
	hdr := make([]byte, 12)
	for {
		if _, err := io.ReadFull(s.jf, hdr); err != nil {
			// EOF at a record boundary is the normal end; anything else
			// (short header, I/O error) ends the valid prefix here.
			return off, nil
		}
		if [4]byte(hdr[:4]) != journalMagic {
			return off, nil
		}
		n := int64(le32(hdr[4:8]))
		crc := le32(hdr[8:12])
		if n > maxRecord {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(s.jf, payload); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil
		}
		if !s.applyRecord(payload) {
			return off, nil
		}
		off += 12 + n
	}
}

// applyRecord applies one checksummed journal payload; false means the
// record is semantically unparseable and replay must stop before it.
func (s *Store) applyRecord(payload []byte) bool {
	p := wire.NewParser(payload)
	typ, err := p.Byte()
	if err != nil {
		return false
	}
	switch typ {
	case recVersion:
		return s.applyVersion(p)
	case recGC:
		return s.applyGC(p)
	default:
		// Unknown record type: written by a future format; stop.
		return false
	}
}

func (s *Store) applyVersion(p *wire.Parser) bool {
	n, err := p.Uvarint()
	if err != nil || n <= s.lastSeq {
		return false
	}
	v := &version{n: n}
	if !readSum(p, &v.digest) {
		return false
	}
	nm, err := p.Uvarint()
	if err != nil || nm > maxRecord {
		return false
	}
	v.manifest = make([]Entry, 0, nm)
	for i := uint64(0); i < nm; i++ {
		var e Entry
		if e.Path, err = p.String(); err != nil {
			return false
		}
		l, err := p.Uvarint()
		if err != nil || !readSum(p, &e.Sum) {
			return false
		}
		e.Len = int(l)
		v.manifest = append(v.manifest, e)
	}
	seg := segName(n)
	refs, segSize, ok := readBlobTable(p, seg)
	if !ok {
		return false
	}
	for sum, ref := range refs {
		s.blobs[sum] = ref
	}
	if segSize > 0 {
		s.segs[seg] = segSize
	}
	s.versions = append(s.versions, v)
	s.lastSeq = n
	return true
}

func (s *Store) applyGC(p *wire.Parser) bool {
	nd, err := p.Uvarint()
	if err != nil || nd > maxRecord {
		return false
	}
	dropped := make(map[uint64]bool, nd)
	for i := uint64(0); i < nd; i++ {
		v, err := p.Uvarint()
		if err != nil {
			return false
		}
		dropped[v] = true
	}
	ns, err := p.Uvarint()
	if err != nil || ns > maxRecord {
		return false
	}
	deleted := make(map[string]bool, ns)
	for i := uint64(0); i < ns; i++ {
		name, err := p.String()
		if err != nil {
			return false
		}
		deleted[name] = true
	}
	gcSeq, err := p.Uvarint()
	if err != nil {
		return false
	}
	rescue, err := p.String()
	if err != nil {
		return false
	}
	var refs map[[md4.Size]byte]blobRef
	var segSize int64
	if rescue != "" {
		var ok bool
		if refs, segSize, ok = readBlobTable(p, rescue); !ok {
			return false
		}
	}
	// Apply: drop versions, drop refs into deleted segments, add rescues.
	kept := s.versions[:0]
	for _, v := range s.versions {
		if !dropped[v.n] {
			kept = append(kept, v)
		}
	}
	s.versions = kept
	for sum, ref := range s.blobs {
		if deleted[ref.seg] {
			delete(s.blobs, sum)
		}
	}
	for name := range deleted {
		delete(s.segs, name)
	}
	for sum, ref := range refs {
		s.blobs[sum] = ref
	}
	if rescue != "" && segSize > 0 {
		s.segs[rescue] = segSize
	}
	if gcSeq > s.gcSeq {
		s.gcSeq = gcSeq
	}
	return true
}

// validateSegments drops blob refs whose segment file is missing or shorter
// than the ref requires; such content lazily reads as unknown.
func (s *Store) validateSegments() {
	need := make(map[string]int64)
	for _, ref := range s.blobs {
		if end := ref.off + ref.n; end > need[ref.seg] {
			need[ref.seg] = end
		}
	}
	bad := make(map[string]bool)
	for seg, n := range need {
		fi, err := os.Stat(filepath.Join(s.dir, seg))
		if err != nil || fi.Size() < n {
			bad[seg] = true
		} else {
			s.segs[seg] = fi.Size()
		}
	}
	for seg := range s.segs {
		if _, ok := need[seg]; !ok && !bad[seg] {
			// Segment with no remaining refs (all superseded); keep its
			// recorded size if the file exists, else forget it.
			fi, err := os.Stat(filepath.Join(s.dir, seg))
			if err != nil {
				delete(s.segs, seg)
			} else {
				s.segs[seg] = fi.Size()
			}
		}
	}
	for sum, ref := range s.blobs {
		if bad[ref.seg] {
			delete(s.blobs, sum)
		}
	}
	for seg := range bad {
		delete(s.segs, seg)
	}
}

// dropUnservableTail pops trailing versions whose manifests are no longer
// fully resolvable, so the latest retained version can always serve journal
// deltas and the Snapshot digest short-circuit never pins a damaged version.
func (s *Store) dropUnservableTail() {
	for len(s.versions) > 0 {
		v := s.versions[len(s.versions)-1]
		if s.resolvable(v.manifest) {
			return
		}
		s.versions = s.versions[:len(s.versions)-1]
	}
}

// resolvable reports whether every manifest entry's delta chain is present
// in the blob index (no disk reads).
func (s *Store) resolvable(manifest []Entry) bool {
	for _, e := range manifest {
		sum := e.Sum
		for {
			ref, ok := s.blobs[sum]
			if !ok {
				return false
			}
			if ref.kind == blobFull {
				break
			}
			sum = ref.base
		}
	}
	return true
}

// removeStraySegments deletes *.seg files not referenced by the live index —
// leftovers of a crash between segment write and journal commit, or of a
// crash between a GC record and its file deletions.
func (s *Store) removeStraySegments() {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.seg"))
	if err != nil {
		return
	}
	for _, path := range matches {
		if _, ok := s.segs[filepath.Base(path)]; !ok {
			os.Remove(path)
		}
	}
}

// LatestVersion reports the newest committed version number, 0 when empty.
func (s *Store) LatestVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.latest(); v != nil {
		return v.n
	}
	return 0
}

// Versions lists the retained version numbers in ascending order.
func (s *Store) Versions() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.versions))
	for i, v := range s.versions {
		out[i] = v.n
	}
	return out
}

// Manifest returns the manifest of version n, or nil if not retained.
func (s *Store) Manifest(n uint64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.find(n); v != nil {
		out := make([]Entry, len(v.manifest))
		copy(out, v.manifest)
		return out
	}
	return nil
}

// Stats reports a point-in-time summary for gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Versions: len(s.versions), JournalBytes: s.jsize}
	if v := s.latest(); v != nil {
		st.Latest = v.n
	}
	for _, n := range s.segs {
		st.SegmentBytes += n
	}
	return st
}

func (s *Store) latest() *version {
	if len(s.versions) == 0 {
		return nil
	}
	return s.versions[len(s.versions)-1]
}

func (s *Store) find(n uint64) *version {
	for _, v := range s.versions {
		if v.n == n {
			return v
		}
	}
	return nil
}

// Snapshot commits the given manifest as a new version, loading changed
// content through load. digest is an opaque fingerprint of the manifest
// (the caller's wire-encoded manifest checksum): when it matches the latest
// version's digest the call is an idempotent no-op returning that version.
// The manifest must be sorted by path (collection manifests are); content
// loaded for a path must match its manifest entry or Snapshot fails without
// committing. Returns the version number and whether a new version was cut.
func (s *Store) Snapshot(manifest []Entry, digest [md4.Size]byte, load func(string) ([]byte, error)) (uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.latest(); v != nil && v.digest == digest {
		return v.n, false, nil
	}
	n := s.lastSeq + 1
	var prev []Entry
	if v := s.latest(); v != nil {
		prev = v.manifest
	}
	changes := DiffManifests(prev, manifest)
	memo := make(map[[md4.Size]byte][]byte)

	seg := segName(n)
	var segBuf []byte
	refs := make(map[[md4.Size]byte]blobRef)
	ordered := make([][md4.Size]byte, 0, len(changes))
	for _, ch := range changes {
		if ch.Op == OpDelete {
			continue
		}
		if _, ok := refs[ch.New.Sum]; ok {
			continue
		}
		if ref, ok := s.blobs[ch.New.Sum]; ok && s.chainOK(ref) {
			continue // content already stored (dedup: renames, copies)
		}
		data, err := load(ch.New.Path)
		if err != nil {
			return 0, false, fmt.Errorf("store: snapshot load %q: %w", ch.New.Path, err)
		}
		if len(data) != ch.New.Len || md4.Sum(data) != ch.New.Sum {
			return 0, false, fmt.Errorf("store: %q changed during snapshot", ch.New.Path)
		}
		blob := delta.Compress(data)
		ref := blobRef{seg: seg, kind: blobFull}
		if ch.Op == OpModify {
			// Prefer a delta against the previous version's content when it
			// is resolvable, the chain stays bounded, and it actually wins.
			if baseRef, ok := s.blobs[ch.Old.Sum]; ok && baseRef.chain+1 <= s.opt.MaxChain && s.chainOK(baseRef) {
				if base, err := s.content(ch.Old.Sum, memo); err == nil {
					if d := delta.Encode(base, data); len(d) < len(blob) {
						blob = d
						ref.kind = blobDelta
						ref.base = ch.Old.Sum
						ref.chain = baseRef.chain + 1
					}
				}
			}
		}
		ref.off = int64(len(segBuf))
		ref.n = int64(len(blob))
		ref.crc = crc32.ChecksumIEEE(blob)
		segBuf = append(segBuf, blob...)
		refs[ch.New.Sum] = ref
		ordered = append(ordered, ch.New.Sum)
		memo[ch.New.Sum] = data
	}

	if len(segBuf) > 0 {
		if err := s.writeFileSync(seg, segBuf); err != nil {
			return 0, false, err
		}
	}

	b := wire.NewBuffer(64 + len(manifest)*32)
	b.Byte(recVersion)
	b.Uvarint(n)
	b.Raw(digest[:])
	b.Uvarint(uint64(len(manifest)))
	for _, e := range manifest {
		b.String(e.Path)
		b.Uvarint(uint64(e.Len))
		b.Raw(e.Sum[:])
	}
	writeBlobTable(b, refs, ordered)
	if err := s.appendRecord(b.Build()); err != nil {
		// The segment may remain as a stray file; Open cleans it up.
		return 0, false, err
	}

	v := &version{n: n, digest: digest, manifest: append([]Entry(nil), manifest...)}
	s.versions = append(s.versions, v)
	for sum, ref := range refs {
		s.blobs[sum] = ref
	}
	if len(segBuf) > 0 {
		s.segs[seg] = int64(len(segBuf))
	}
	s.lastSeq = n
	s.gc()
	return n, true, nil
}

// chainOK reports whether ref's full delta chain is present in the index.
func (s *Store) chainOK(ref blobRef) bool {
	for ref.kind == blobDelta {
		next, ok := s.blobs[ref.base]
		if !ok {
			return false
		}
		ref = next
	}
	return true
}

// Content reconstructs the stored content with the given checksum.
func (s *Store) Content(sum [md4.Size]byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.content(sum, make(map[[md4.Size]byte][]byte))
}

func (s *Store) content(sum [md4.Size]byte, memo map[[md4.Size]byte][]byte) ([]byte, error) {
	if data, ok := memo[sum]; ok {
		return data, nil
	}
	ref, ok := s.blobs[sum]
	if !ok {
		return nil, ErrUnknownContent
	}
	raw, err := s.readBlob(ref)
	if err != nil {
		return nil, err
	}
	var data []byte
	if ref.kind == blobFull {
		data, err = delta.Decompress(raw)
	} else {
		var base []byte
		if base, err = s.content(ref.base, memo); err == nil {
			data, err = delta.Decode(base, raw)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownContent, err)
	}
	if md4.Sum(data) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrUnknownContent)
	}
	memo[sum] = data
	return data, nil
}

func (s *Store) readBlob(ref blobRef) ([]byte, error) {
	f, err := os.Open(filepath.Join(s.dir, ref.seg))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownContent, err)
	}
	defer f.Close()
	raw := make([]byte, ref.n)
	if _, err := f.ReadAt(raw, ref.off); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownContent, err)
	}
	if crc32.ChecksumIEEE(raw) != ref.crc {
		return nil, fmt.Errorf("%w: blob checksum mismatch", ErrUnknownContent)
	}
	return raw, nil
}

// Delta computes the precomputed journal delta from version base to the
// latest version. Both digests must match what the store recorded — the
// caller passes the fingerprint of the client's announced manifest and of
// the server's live manifest, so a hit guarantees the delta transforms
// exactly the client's tree into exactly the server's. Any mismatch,
// unknown or GC'd version, or unreadable content reports a miss (never an
// error): the session falls back to the full protocol.
func (s *Store) Delta(base uint64, baseDigest, currentDigest [md4.Size]byte) (*Delta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	latest := s.latest()
	if latest == nil || latest.digest != currentDigest {
		return nil, false
	}
	bv := s.find(base)
	if bv == nil || bv.digest != baseDigest {
		return nil, false
	}
	d := &Delta{Base: base, Current: latest.n, Changes: make(map[string]*Change)}
	if bv.n == latest.n {
		return d, true
	}
	memo := make(map[[md4.Size]byte][]byte)
	for _, ch := range DiffManifests(bv.manifest, latest.manifest) {
		out := &Change{Op: ch.Op}
		switch ch.Op {
		case OpDelete:
			d.Changes[ch.Old.Path] = out
			continue
		case OpAdd:
			payload, err := s.fullPayload(ch.New.Sum, memo)
			if err != nil {
				return nil, false
			}
			out.Payload = payload
			d.Added = append(d.Added, ch.New.Path)
		case OpModify:
			payload, err := s.modifyPayload(ch.Old.Sum, ch.New.Sum, memo)
			if err != nil {
				return nil, false
			}
			out.Payload = payload
		}
		out.Len = ch.New.Len
		out.Sum = ch.New.Sum
		d.Changes[ch.New.Path] = out
	}
	sort.Strings(d.Added)
	return d, true
}

// fullPayload returns delta.Compress(content): the stored blob verbatim when
// it is already a full blob, else recompressed from reconstructed content.
func (s *Store) fullPayload(sum [md4.Size]byte, memo map[[md4.Size]byte][]byte) ([]byte, error) {
	if ref, ok := s.blobs[sum]; ok && ref.kind == blobFull {
		return s.readBlob(ref)
	}
	data, err := s.content(sum, memo)
	if err != nil {
		return nil, err
	}
	return delta.Compress(data), nil
}

// modifyPayload returns delta.Encode(old content, new content), reusing the
// stored single-step delta blob when it was computed against exactly oldSum.
func (s *Store) modifyPayload(oldSum, newSum [md4.Size]byte, memo map[[md4.Size]byte][]byte) ([]byte, error) {
	if ref, ok := s.blobs[newSum]; ok && ref.kind == blobDelta && ref.base == oldSum {
		return s.readBlob(ref)
	}
	old, err := s.content(oldSum, memo)
	if err != nil {
		return nil, err
	}
	data, err := s.content(newSum, memo)
	if err != nil {
		return nil, err
	}
	return delta.Encode(old, data), nil
}

// gc drops oldest versions while segment bytes exceed the budget, never
// evicting the latest version. Caller holds s.mu.
func (s *Store) gc() {
	if s.opt.Budget <= 0 {
		return
	}
	for len(s.versions) > 1 && s.segTotal() > s.opt.Budget {
		if !s.dropOldest() {
			return
		}
	}
}

func (s *Store) segTotal() int64 {
	var t int64
	for _, n := range s.segs {
		t += n
	}
	return t
}

// dropOldest evicts the oldest version: blobs still reachable from surviving
// manifests are rescued as full blobs into a rescue segment, then every
// segment no surviving chain touches is deleted. Returns false when the
// eviction could not be committed (journal append failure).
func (s *Store) dropOldest() bool {
	victim := s.versions[0]
	survivors := s.versions[1:]
	reachable := make(map[[md4.Size]byte]bool)
	for _, v := range survivors {
		for _, e := range v.manifest {
			s.markChain(e.Sum, reachable)
		}
	}
	needSeg := make(map[string]bool)
	for sum := range reachable {
		if ref, ok := s.blobs[sum]; ok {
			needSeg[ref.seg] = true
		}
	}
	// The victim's own segment must go to reclaim bytes; rescue what
	// survivors still need from it. Every other unneeded segment goes too.
	vseg := segName(victim.n)
	var rescueSums [][md4.Size]byte
	if needSeg[vseg] {
		for sum := range reachable {
			if ref, ok := s.blobs[sum]; ok && ref.seg == vseg {
				rescueSums = append(rescueSums, sum)
			}
		}
		sort.Slice(rescueSums, func(i, j int) bool {
			return string(rescueSums[i][:]) < string(rescueSums[j][:])
		})
	}
	var doomed []string
	for seg := range s.segs {
		if !needSeg[seg] || seg == vseg {
			doomed = append(doomed, seg)
		}
	}
	sort.Strings(doomed)

	rescueName := ""
	var rescueBuf []byte
	rescueRefs := make(map[[md4.Size]byte]blobRef)
	var rescueOrder [][md4.Size]byte
	if len(rescueSums) > 0 {
		s.gcSeq++
		rescueName = fmt.Sprintf("r%08d.seg", s.gcSeq)
		memo := make(map[[md4.Size]byte][]byte)
		for _, sum := range rescueSums {
			data, err := s.content(sum, memo)
			if err != nil {
				continue // damaged chain: content is lost either way
			}
			blob := delta.Compress(data)
			rescueRefs[sum] = blobRef{
				seg:  rescueName,
				off:  int64(len(rescueBuf)),
				n:    int64(len(blob)),
				crc:  crc32.ChecksumIEEE(blob),
				kind: blobFull,
			}
			rescueBuf = append(rescueBuf, blob...)
			rescueOrder = append(rescueOrder, sum)
		}
		if len(rescueBuf) > 0 {
			if err := s.writeFileSync(rescueName, rescueBuf); err != nil {
				return false
			}
		} else {
			rescueName = ""
		}
	}

	b := wire.NewBuffer(256)
	b.Byte(recGC)
	b.Uvarint(1)
	b.Uvarint(victim.n)
	b.Uvarint(uint64(len(doomed)))
	for _, seg := range doomed {
		b.String(seg)
	}
	b.Uvarint(s.gcSeq)
	b.String(rescueName)
	if rescueName != "" {
		writeBlobTable(b, rescueRefs, rescueOrder)
	}
	if err := s.appendRecord(b.Build()); err != nil {
		return false
	}

	// Committed: now mutate memory and delete files.
	s.versions = s.versions[1:]
	doomedSet := make(map[string]bool, len(doomed))
	for _, seg := range doomed {
		doomedSet[seg] = true
	}
	for sum, ref := range s.blobs {
		if doomedSet[ref.seg] {
			delete(s.blobs, sum)
		}
	}
	for sum, ref := range rescueRefs {
		s.blobs[sum] = ref
	}
	for _, seg := range doomed {
		delete(s.segs, seg)
		os.Remove(filepath.Join(s.dir, seg))
	}
	if rescueName != "" {
		s.segs[rescueName] = int64(len(rescueBuf))
	}
	return true
}

// markChain adds sum and its whole delta chain to the reachable set.
func (s *Store) markChain(sum [md4.Size]byte, reachable map[[md4.Size]byte]bool) {
	for !reachable[sum] {
		reachable[sum] = true
		ref, ok := s.blobs[sum]
		if !ok || ref.kind == blobFull {
			return
		}
		sum = ref.base
	}
}

// writeFileSync writes name under the store dir, fsyncing the file and the
// directory so the data is durable before the journal commits a reference.
func (s *Store) writeFileSync(name string, data []byte) error {
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// appendRecord frames and appends one journal record, fsyncing the journal.
// The append is the commit point of every store mutation.
func (s *Store) appendRecord(payload []byte) error {
	hdr := make([]byte, 12)
	copy(hdr, journalMagic[:])
	putLE32(hdr[4:8], uint32(len(payload)))
	putLE32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := s.jf.Write(hdr); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if _, err := s.jf.Write(payload); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := s.jf.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	s.jsize += int64(12 + len(payload))
	return nil
}

// manifest diffing

// ManifestChange is one path's evolution between two manifests, as computed
// by DiffManifests: Old is the base entry (zero for OpAdd), New the current
// one (zero for OpDelete).
type ManifestChange struct {
	Op       byte
	Old, New Entry
}

// DiffManifests computes the change list between two path-sorted manifests —
// the same diff the store's Snapshot commits to its journal, exported so
// publish-style pipelines (internal/pubsig) derive their version-to-version
// delta artifacts from the identical change semantics.
func DiffManifests(old, new []Entry) []ManifestChange {
	var out []ManifestChange
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i].Path == new[j].Path:
			if old[i].Len != new[j].Len || old[i].Sum != new[j].Sum {
				out = append(out, ManifestChange{Op: OpModify, Old: old[i], New: new[j]})
			}
			i++
			j++
		case old[i].Path < new[j].Path:
			out = append(out, ManifestChange{Op: OpDelete, Old: old[i]})
			i++
		default:
			out = append(out, ManifestChange{Op: OpAdd, New: new[j]})
			j++
		}
	}
	for ; i < len(old); i++ {
		out = append(out, ManifestChange{Op: OpDelete, Old: old[i]})
	}
	for ; j < len(new); j++ {
		out = append(out, ManifestChange{Op: OpAdd, New: new[j]})
	}
	return out
}

// blob table encoding (shared by recVersion and recGC)

func writeBlobTable(b *wire.Buffer, refs map[[md4.Size]byte]blobRef, order [][md4.Size]byte) {
	b.Uvarint(uint64(len(order)))
	for _, sum := range order {
		ref := refs[sum]
		b.Raw(sum[:])
		b.Uvarint(uint64(ref.off))
		b.Uvarint(uint64(ref.n))
		b.Uvarint(uint64(ref.crc))
		b.Byte(ref.kind)
		if ref.kind == blobDelta {
			b.Raw(ref.base[:])
			b.Uvarint(uint64(ref.chain))
		}
	}
}

func readBlobTable(p *wire.Parser, seg string) (map[[md4.Size]byte]blobRef, int64, bool) {
	nb, err := p.Uvarint()
	if err != nil || nb > maxRecord {
		return nil, 0, false
	}
	refs := make(map[[md4.Size]byte]blobRef, nb)
	var size int64
	for i := uint64(0); i < nb; i++ {
		var sum [md4.Size]byte
		if !readSum(p, &sum) {
			return nil, 0, false
		}
		off, err1 := p.Uvarint()
		n, err2 := p.Uvarint()
		crc, err3 := p.Uvarint()
		kind, err4 := p.Byte()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, 0, false
		}
		ref := blobRef{seg: seg, off: int64(off), n: int64(n), crc: uint32(crc), kind: kind}
		if kind == blobDelta {
			if !readSum(p, &ref.base) {
				return nil, 0, false
			}
			chain, err := p.Uvarint()
			if err != nil {
				return nil, 0, false
			}
			ref.chain = int(chain)
		} else if kind != blobFull {
			return nil, 0, false
		}
		if end := ref.off + ref.n; end > size {
			size = end
		}
		refs[sum] = ref
	}
	return refs, size, true
}

func readSum(p *wire.Parser, out *[md4.Size]byte) bool {
	raw, err := p.Raw(md4.Size)
	if err != nil {
		return false
	}
	copy(out[:], raw)
	return true
}

func segName(n uint64) string { return fmt.Sprintf("v%08d.seg", n) }

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
