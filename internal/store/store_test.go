package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"msync/internal/md4"

	"msync/internal/delta"
)

// manifestOf builds a sorted manifest from a file map.
func manifestOf(files map[string][]byte) []Entry {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	m := make([]Entry, 0, len(paths))
	for _, p := range paths {
		m = append(m, Entry{Path: p, Len: len(files[p]), Sum: md4.Sum(files[p])})
	}
	return m
}

// digestOf is the test stand-in for the collection manifest digest: any
// injective fingerprint of the manifest works, the store treats it opaquely.
func digestOf(m []Entry) [md4.Size]byte {
	var b bytes.Buffer
	for _, e := range m {
		fmt.Fprintf(&b, "%s/%d/%x\n", e.Path, e.Len, e.Sum)
	}
	return md4.Sum(b.Bytes())
}

func loader(files map[string][]byte) func(string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		data, ok := files[path]
		if !ok {
			return nil, os.ErrNotExist
		}
		return data, nil
	}
}

func snap(t *testing.T, s *Store, files map[string][]byte) uint64 {
	t.Helper()
	m := manifestOf(files)
	v, _, err := s.Snapshot(m, digestOf(m), loader(files))
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return v
}

// applyDelta reconstructs the target tree by applying d to base files.
func applyDelta(t *testing.T, d *Delta, base map[string][]byte) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(base))
	for p, data := range base {
		out[p] = data
	}
	for path, ch := range d.Changes {
		switch ch.Op {
		case OpDelete:
			delete(out, path)
		case OpAdd:
			data, err := delta.Decompress(ch.Payload)
			if err != nil {
				t.Fatalf("add %q: %v", path, err)
			}
			out[path] = data
		case OpModify:
			data, err := delta.Decode(base[path], ch.Payload)
			if err != nil {
				t.Fatalf("modify %q: %v", path, err)
			}
			if len(data) != ch.Len || md4.Sum(data) != ch.Sum {
				t.Fatalf("modify %q: reconstructed content mismatch", path)
			}
			out[path] = data
		}
	}
	return out
}

func sameTree(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for p, data := range a {
		if !bytes.Equal(b[p], data) {
			return false
		}
	}
	return true
}

func treeV(n int) map[string][]byte {
	files := map[string][]byte{
		"docs/readme.txt": []byte("read me, version tracking test"),
		"src/main.go":     bytes.Repeat([]byte("package main // filler\n"), 40),
		"src/util.go":     bytes.Repeat([]byte("func util() {}\n"), 30),
	}
	// Evolve deterministically with n: one file modified per step, one
	// added every other step, one deleted at step 3.
	for i := 1; i <= n; i++ {
		files["src/main.go"] = append(files["src/main.go"], []byte(fmt.Sprintf("// rev %d\n", i))...)
		if i%2 == 0 {
			files[fmt.Sprintf("new/file%d.txt", i)] = bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		}
		if i == 3 {
			delete(files, "docs/readme.txt")
		}
	}
	return files
}

func TestSnapshotAndDelta(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var trees []map[string][]byte
	for i := 0; i < 6; i++ {
		trees = append(trees, treeV(i))
		v := snap(t, s, trees[i])
		if v != uint64(i+1) {
			t.Fatalf("version = %d, want %d", v, i+1)
		}
	}
	if got := s.LatestVersion(); got != 6 {
		t.Fatalf("LatestVersion = %d, want 6", got)
	}

	// Idempotent re-snapshot of the same tree.
	m := manifestOf(trees[5])
	v, cut, err := s.Snapshot(m, digestOf(m), loader(trees[5]))
	if err != nil || cut || v != 6 {
		t.Fatalf("re-snapshot = (%d, %v, %v), want (6, false, nil)", v, cut, err)
	}

	// Journal delta from v-1 and v-5 both reconstruct the latest tree.
	for _, base := range []int{5, 1} {
		bm := manifestOf(trees[base-1])
		d, ok := s.Delta(uint64(base), digestOf(bm), digestOf(m))
		if !ok {
			t.Fatalf("Delta(base=%d) missed", base)
		}
		if d.Current != 6 {
			t.Fatalf("Delta.Current = %d, want 6", d.Current)
		}
		got := applyDelta(t, d, trees[base-1])
		if !sameTree(got, trees[5]) {
			t.Fatalf("delta from v%d does not reconstruct v6", base)
		}
	}

	// Same base version: empty delta.
	d, ok := s.Delta(6, digestOf(m), digestOf(m))
	if !ok || len(d.Changes) != 0 {
		t.Fatalf("self-delta = (%v, %v), want empty hit", d, ok)
	}

	// Unknown version and digest mismatches miss.
	if _, ok := s.Delta(99, digestOf(m), digestOf(m)); ok {
		t.Fatal("Delta with unknown base version should miss")
	}
	var wrong [md4.Size]byte
	if _, ok := s.Delta(5, wrong, digestOf(m)); ok {
		t.Fatal("Delta with wrong base digest should miss")
	}
	if _, ok := s.Delta(5, digestOf(manifestOf(trees[4])), wrong); ok {
		t.Fatal("Delta with stale current digest should miss")
	}
}

func TestContentDedupOnRename(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big := bytes.Repeat([]byte("large shared payload "), 500)
	v1 := map[string][]byte{"a/big.bin": big}
	snap(t, s, v1)
	before := s.Stats().SegmentBytes

	// Rename: same content under a new path must not store a second blob.
	v2 := map[string][]byte{"b/big.bin": big}
	snap(t, s, v2)
	if after := s.Stats().SegmentBytes; after != before {
		t.Fatalf("rename stored new content: segment bytes %d -> %d", before, after)
	}
}

func TestReopenPreservesVersions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trees := []map[string][]byte{treeV(0), treeV(1), treeV(2)}
	for _, tr := range trees {
		snap(t, s, tr)
	}
	s.Close()

	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Versions(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Versions after reopen = %v, want [1 2 3]", got)
	}
	m := manifestOf(trees[2])
	d, ok := s.Delta(1, digestOf(manifestOf(trees[0])), digestOf(m))
	if !ok {
		t.Fatal("Delta missed after reopen")
	}
	if got := applyDelta(t, d, trees[0]); !sameTree(got, trees[2]) {
		t.Fatal("delta after reopen does not reconstruct latest")
	}
}

func TestCrashPartialJournalAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trees := []map[string][]byte{treeV(0), treeV(1)}
	for _, tr := range trees {
		snap(t, s, tr)
	}
	s.Close()

	// Simulate a crash mid-append: a torn record at the journal tail.
	jpath := filepath.Join(dir, "journal")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{'m', 's', 'j', '1', 0xff, 0x00, 0x00, 0x00, 1, 2, 3})
	f.Close()

	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn append: %v", err)
	}
	if got := s.Versions(); len(got) != 2 {
		t.Fatalf("Versions = %v, want the 2 committed ones", got)
	}
	// The store must keep working: a new snapshot lands after the valid
	// prefix and survives another reopen.
	v3 := treeV(2)
	if v := snap(t, s, v3); v != 3 {
		t.Fatalf("snapshot after recovery = v%d, want v3", v)
	}
	s.Close()
	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.LatestVersion(); got != 3 {
		t.Fatalf("LatestVersion after second reopen = %d, want 3", got)
	}
}

func TestCrashCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		snap(t, s, treeV(i))
		sizes = append(sizes, s.Stats().JournalBytes)
	}
	s.Close()

	// Flip a byte inside the second record: replay must stop before it,
	// keeping only v1 — and never error.
	raw, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	raw[sizes[0]+20] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "journal"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with corrupt middle record: %v", err)
	}
	defer s.Close()
	if got := s.Versions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Versions = %v, want [1]", got)
	}
	// The lost versions read as unknown -> miss, not error.
	m2 := manifestOf(treeV(1))
	if _, ok := s.Delta(2, digestOf(m2), digestOf(m2)); ok {
		t.Fatal("Delta against corrupted-away version should miss")
	}
}

func TestCrashTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trees := []map[string][]byte{treeV(0), treeV(1), treeV(2)}
	for _, tr := range trees {
		snap(t, s, tr)
	}
	s.Close()

	// Truncate the latest version's segment: the reopened store must not
	// serve v3 (it is no longer fully reconstructible).
	seg := filepath.Join(dir, segName(3))
	if err := os.Truncate(seg, 1); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with truncated segment: %v", err)
	}
	defer s.Close()
	for _, v := range s.Versions() {
		if v == 3 {
			t.Fatal("truncated version still served after reopen")
		}
	}
	// Deltas touching the dropped version miss; earlier versions still work.
	m3 := manifestOf(trees[2])
	if _, ok := s.Delta(3, digestOf(m3), digestOf(m3)); ok {
		t.Fatal("Delta from truncated version should miss")
	}
	m2 := manifestOf(trees[1])
	d, ok := s.Delta(1, digestOf(manifestOf(trees[0])), digestOf(m2))
	if !ok {
		t.Fatal("Delta between intact versions should still hit")
	}
	if got := applyDelta(t, d, trees[0]); !sameTree(got, trees[1]) {
		t.Fatal("surviving delta does not reconstruct v2")
	}
}

func TestGCBudget(t *testing.T) {
	dir := t.TempDir()
	// A tiny budget forces eviction after every snapshot.
	s, err := Open(dir, Options{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var trees []map[string][]byte
	for i := 0; i < 4; i++ {
		trees = append(trees, treeV(i))
		snap(t, s, trees[i])
		// The latest version survives any budget.
		st := s.Stats()
		if st.Latest != uint64(i+1) {
			t.Fatalf("after snapshot %d: latest = %d", i+1, st.Latest)
		}
		if st.Versions != 1 {
			t.Fatalf("after snapshot %d: %d versions retained, want 1", i+1, st.Versions)
		}
	}
	// Evicted versions miss.
	m := manifestOf(trees[3])
	if _, ok := s.Delta(1, digestOf(manifestOf(trees[0])), digestOf(m)); ok {
		t.Fatal("Delta from GC'd version should miss")
	}
	// The latest version is still fully reconstructible from disk.
	for _, e := range manifestOf(trees[3]) {
		data, err := s.Content(e.Sum)
		if err != nil {
			t.Fatalf("Content(%s): %v", e.Path, err)
		}
		if !bytes.Equal(data, trees[3][e.Path]) {
			t.Fatalf("Content(%s) mismatch", e.Path)
		}
	}
}

func TestGCRescueKeepsSurvivorContent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A stable file introduced at v1 plus incompressible churn that grows
	// the store past the budget.
	stable := bytes.Repeat([]byte("stable content that lives in v1's segment "), 100)
	noise := func(seed uint32, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			seed = seed*1664525 + 1013904223
			out[i] = byte(seed >> 24)
		}
		return out
	}
	mk := func(rev int) map[string][]byte {
		return map[string][]byte{
			"stable.bin": stable,
			"churn.bin":  noise(uint32(rev), 3000),
		}
	}
	var trees []map[string][]byte
	for i := 0; i < 5; i++ {
		trees = append(trees, mk(i+1))
		snap(t, s, trees[i])
	}
	// Now shrink the budget and GC by snapshotting once more: dropping v1
	// must rescue stable.bin's blob, which every survivor still references.
	s.opt.Budget = 4000
	trees = append(trees, mk(6))
	snap(t, s, trees[5])

	st := s.Stats()
	if st.Versions >= 6 {
		t.Fatalf("GC retained all %d versions", st.Versions)
	}
	got, err := s.Content(md4.Sum(stable))
	if err != nil {
		t.Fatalf("rescued content unreadable: %v", err)
	}
	if !bytes.Equal(got, stable) {
		t.Fatal("rescued content mismatch")
	}
	// A journal delta from the oldest surviving version still reconstructs.
	vs := s.Versions()
	base := vs[0]
	bm := manifestOf(trees[base-1])
	m := manifestOf(trees[5])
	d, ok := s.Delta(base, digestOf(bm), digestOf(m))
	if !ok {
		t.Fatalf("Delta from oldest survivor v%d missed", base)
	}
	if got := applyDelta(t, d, trees[base-1]); !sameTree(got, trees[5]) {
		t.Fatal("post-GC delta does not reconstruct latest")
	}

	// GC state survives reopen.
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Content(md4.Sum(stable)); err != nil {
		t.Fatalf("rescued content unreadable after reopen: %v", err)
	}
}

func TestGCNeverEvictsLatest(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	files := map[string][]byte{"f": bytes.Repeat([]byte("x"), 10000)}
	snap(t, s, files)
	files["f"] = bytes.Repeat([]byte("y"), 10000)
	v := snap(t, s, files)
	st := s.Stats()
	if st.Versions != 1 || st.Latest != v {
		t.Fatalf("stats = %+v, want only latest v%d retained", st, v)
	}
	if _, err := s.Content(md4.Sum(files["f"])); err != nil {
		t.Fatalf("latest content must stay readable under any budget: %v", err)
	}
}

func TestSnapshotLoadMismatchFails(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	files := map[string][]byte{"f": []byte("declared content")}
	m := manifestOf(files)
	_, _, err = s.Snapshot(m, digestOf(m), func(string) ([]byte, error) {
		return []byte("different content"), nil
	})
	if err == nil {
		t.Fatal("Snapshot with drifting content must fail")
	}
	if got := s.LatestVersion(); got != 0 {
		t.Fatalf("failed snapshot committed version %d", got)
	}
}

func TestDeltaChainBound(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxChain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	files := map[string][]byte{"f": bytes.Repeat([]byte("seed content here "), 200)}
	snap(t, s, files)
	for i := 0; i < 6; i++ {
		files["f"] = append(files["f"], byte('0'+i))
		snap(t, s, files)
	}
	// Every stored version's content must resolve within the chain bound.
	if _, err := s.Content(md4.Sum(files["f"])); err != nil {
		t.Fatalf("content unresolvable: %v", err)
	}
	for sum, ref := range s.blobs {
		if ref.chain > 2 {
			t.Fatalf("blob %x chain %d exceeds MaxChain 2", sum[:4], ref.chain)
		}
	}
}
