// Package huffman implements canonical Huffman coding, the entropy stage of
// the delta compressor in internal/delta (our zdelta substitute).
//
// Codes are canonical: only the code lengths cross the wire; both sides
// derive identical codewords from the lengths. Lengths are capped at
// MaxCodeLen by frequency flattening, the standard zlib-style trick.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"msync/internal/bitio"
)

// MaxCodeLen is the maximum codeword length in bits.
const MaxCodeLen = 32

// MaxSymbols bounds the alphabet size accepted by Build and ReadTable.
const MaxSymbols = 1 << 16

var (
	// ErrNoSymbols is returned by Encode when the code is empty.
	ErrNoSymbols = errors.New("huffman: code has no symbols")
	// ErrBadTable is returned when a decoded length table is invalid.
	ErrBadTable = errors.New("huffman: invalid code length table")
)

// Code holds a canonical Huffman code for symbols 0..n-1.
type Code struct {
	lengths []uint8  // lengths[sym], 0 = symbol unused
	codes   []uint32 // canonical codewords, valid where lengths[sym] > 0
}

type buildNode struct {
	freq        int64
	sym         int // -1 for internal
	left, right int // indices into node slice, -1 for leaves
}

type nodeHeap struct {
	nodes []buildNode
	order []int
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	// Tie-break on index for determinism.
	return h.order[i] < h.order[j]
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() any {
	old := h.order
	n := len(old)
	v := old[n-1]
	h.order = old[:n-1]
	return v
}

// Build constructs a canonical code from symbol frequencies. Symbols with
// zero frequency get no codeword. If every frequency is zero the resulting
// code is empty (valid only for empty streams).
func Build(freq []int64) (*Code, error) {
	if len(freq) > MaxSymbols {
		return nil, fmt.Errorf("huffman: %d symbols exceeds maximum %d", len(freq), MaxSymbols)
	}
	lengths := computeLengths(freq)
	for tooLong(lengths) {
		freq = flatten(freq)
		lengths = computeLengths(freq)
	}
	c := &Code{lengths: lengths}
	c.assignCodes()
	return c, nil
}

// computeLengths runs the Huffman algorithm and returns code lengths.
func computeLengths(freq []int64) []uint8 {
	lengths := make([]uint8, len(freq))
	var nodes []buildNode
	h := &nodeHeap{}
	for sym, f := range freq {
		if f > 0 {
			nodes = append(nodes, buildNode{freq: f, sym: sym, left: -1, right: -1})
			h.order = append(h.order, len(nodes)-1)
		}
	}
	switch len(h.order) {
	case 0:
		return lengths
	case 1:
		lengths[nodes[h.order[0]].sym] = 1
		return lengths
	}
	h.nodes = nodes
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, buildNode{
			freq: h.nodes[a].freq + h.nodes[b].freq,
			sym:  -1, left: a, right: b,
		})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]
	// Iterative DFS assigning depths.
	type frame struct {
		node  int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := h.nodes[f.node]
		if n.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			lengths[n.sym] = d
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return lengths
}

func tooLong(lengths []uint8) bool {
	for _, l := range lengths {
		if l > MaxCodeLen {
			return true
		}
	}
	return false
}

// flatten halves frequencies (keeping nonzero ones nonzero), reducing skew
// and therefore maximum code length.
func flatten(freq []int64) []int64 {
	out := make([]int64, len(freq))
	for i, f := range freq {
		if f > 0 {
			out[i] = (f + 1) / 2
		}
	}
	return out
}

// assignCodes derives canonical codewords from lengths.
func (c *Code) assignCodes() {
	c.codes = make([]uint32, len(c.lengths))
	type symLen struct {
		sym int
		l   uint8
	}
	var used []symLen
	for sym, l := range c.lengths {
		if l > 0 {
			used = append(used, symLen{sym, l})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].l != used[j].l {
			return used[i].l < used[j].l
		}
		return used[i].sym < used[j].sym
	})
	code := uint32(0)
	prevLen := uint8(0)
	for _, u := range used {
		code <<= u.l - prevLen
		c.codes[u.sym] = code
		code++
		prevLen = u.l
	}
}

// NumSymbols reports the alphabet size (including unused symbols).
func (c *Code) NumSymbols() int { return len(c.lengths) }

// Length reports the codeword length of sym (0 if unused).
func (c *Code) Length(sym int) int { return int(c.lengths[sym]) }

// Encode writes the codeword for sym.
func (c *Code) Encode(w *bitio.Writer, sym int) error {
	if sym < 0 || sym >= len(c.lengths) || c.lengths[sym] == 0 {
		return fmt.Errorf("huffman: symbol %d has no codeword", sym)
	}
	w.WriteBits(uint64(c.codes[sym]), uint(c.lengths[sym]))
	return nil
}

// WriteTable encodes the length table. Format: uvarint-ish symbol count in
// 16 bits, then run-length coded lengths: 6-bit length followed, for length
// zero, by a 8-bit extra run count.
func (c *Code) WriteTable(w *bitio.Writer) {
	w.WriteBits(uint64(len(c.lengths)), 16)
	i := 0
	for i < len(c.lengths) {
		l := c.lengths[i]
		w.WriteBits(uint64(l), 6)
		if l == 0 {
			// Count additional zero run (up to 255).
			run := 0
			for i+1+run < len(c.lengths) && run < 255 && c.lengths[i+1+run] == 0 {
				run++
			}
			w.WriteBits(uint64(run), 8)
			i += 1 + run
		} else {
			i++
		}
	}
}

// Decoder decodes canonical Huffman streams.
type Decoder struct {
	// For each length l in 1..MaxCodeLen:
	firstCode [MaxCodeLen + 1]uint32 // first canonical code of that length
	firstIdx  [MaxCodeLen + 1]int    // index into syms of that first code
	count     [MaxCodeLen + 1]int    // number of codes of that length
	syms      []int                  // symbols in canonical order
	n         int                    // alphabet size
}

// ReadTable decodes a length table written by WriteTable and returns a
// Decoder.
func ReadTable(r *bitio.Reader) (*Decoder, error) {
	nSym, err := r.ReadBits(16)
	if err != nil {
		return nil, err
	}
	lengths := make([]uint8, nSym)
	i := 0
	for i < int(nSym) {
		lv, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		if lv == 0 {
			run, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			i += 1 + int(run)
			if i > int(nSym) {
				return nil, ErrBadTable
			}
		} else {
			if lv > MaxCodeLen {
				return nil, ErrBadTable
			}
			lengths[i] = uint8(lv)
			i++
		}
	}
	return NewDecoder(lengths)
}

// NewDecoder builds a Decoder directly from code lengths.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{n: len(lengths)}
	type symLen struct {
		sym int
		l   uint8
	}
	var used []symLen
	for sym, l := range lengths {
		if l > MaxCodeLen {
			return nil, ErrBadTable
		}
		if l > 0 {
			used = append(used, symLen{sym, l})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].l != used[j].l {
			return used[i].l < used[j].l
		}
		return used[i].sym < used[j].sym
	})
	code := uint64(0)
	prevLen := uint8(0)
	for idx, u := range used {
		code <<= u.l - prevLen
		if d.count[u.l] == 0 {
			d.firstCode[u.l] = uint32(code)
			d.firstIdx[u.l] = idx
		}
		d.count[u.l]++
		d.syms = append(d.syms, u.sym)
		code++
		prevLen = u.l
		// Kraft check: code must fit in u.l bits after increments.
		if code > 1<<u.l {
			return nil, ErrBadTable
		}
	}
	return d, nil
}

// Decode reads one symbol.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	if len(d.syms) == 0 {
		return 0, ErrNoSymbols
	}
	var code uint64
	for l := 1; l <= MaxCodeLen; l++ {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if c := d.count[l]; c > 0 {
			first := uint64(d.firstCode[l])
			if code >= first && code < first+uint64(c) {
				return d.syms[d.firstIdx[l]+int(code-first)], nil
			}
		}
	}
	return 0, ErrBadTable
}
