package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/bitio"
)

// encodeDecodeOnce runs a full build/table/encode/decode cycle over a symbol
// stream drawn from freq.
func encodeDecodeOnce(t *testing.T, freq []int64, stream []int) {
	t.Helper()
	code, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	w := &bitio.Writer{}
	code.WriteTable(w)
	for _, s := range stream {
		if err := code.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	dec, err := ReadTable(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range stream {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestRoundTripSimple(t *testing.T) {
	freq := []int64{10, 5, 2, 1, 0, 7}
	stream := []int{0, 1, 2, 3, 5, 0, 0, 1, 5, 2}
	encodeDecodeOnce(t, freq, stream)
}

func TestSingleSymbol(t *testing.T) {
	freq := []int64{0, 0, 42, 0}
	encodeDecodeOnce(t, freq, []int{2, 2, 2})
}

func TestEmptyCode(t *testing.T) {
	code, err := Build([]int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := code.Encode(&bitio.Writer{}, 0); err == nil {
		t.Fatal("encoding with empty code should fail")
	}
	// Table round-trips even when empty.
	w := &bitio.Writer{}
	code.WriteTable(w)
	dec, err := ReadTable(bitio.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(bitio.NewReader(nil)); err != ErrNoSymbols {
		t.Fatalf("err = %v", err)
	}
}

// TestQuickRoundTrip: random frequency tables and streams survive the cycle.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		freq := make([]int64, n)
		var used []int
		for i := range freq {
			if rng.Intn(3) > 0 {
				freq[i] = int64(rng.Intn(10000) + 1)
				used = append(used, i)
			}
		}
		if len(used) == 0 {
			return true
		}
		stream := make([]int, 200)
		for i := range stream {
			stream[i] = used[rng.Intn(len(used))]
		}
		code, err := Build(freq)
		if err != nil {
			return false
		}
		w := &bitio.Writer{}
		code.WriteTable(w)
		for _, s := range stream {
			if code.Encode(w, s) != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		dec, err := ReadTable(r)
		if err != nil {
			return false
		}
		for _, want := range stream {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNearEntropy: the code length must approach the source entropy.
func TestNearEntropy(t *testing.T) {
	freq := []int64{900, 50, 25, 15, 10}
	total := int64(0)
	for _, f := range freq {
		total += f
	}
	entropy := 0.0
	for _, f := range freq {
		p := float64(f) / float64(total)
		entropy -= p * math.Log2(p)
	}
	code, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	avg := 0.0
	for s, f := range freq {
		avg += float64(f) / float64(total) * float64(code.Length(s))
	}
	if avg > entropy+1 {
		t.Fatalf("avg code length %.3f exceeds entropy %.3f + 1", avg, entropy)
	}
}

// TestExtremeSkew: Fibonacci-like frequencies force deep trees; the flatten
// loop must cap lengths at MaxCodeLen.
func TestExtremeSkew(t *testing.T) {
	freq := make([]int64, 64)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
		if a < 0 { // overflow guard
			a = 1 << 62
		}
	}
	code, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	for s := range freq {
		if code.Length(s) > MaxCodeLen {
			t.Fatalf("symbol %d length %d > max", s, code.Length(s))
		}
		if code.Length(s) == 0 {
			t.Fatalf("symbol %d lost its code", s)
		}
	}
	encodeDecodeOnce(t, freq, []int{0, 30, 63, 1, 62})
}

func TestTooManySymbols(t *testing.T) {
	if _, err := Build(make([]int64, MaxSymbols+1)); err == nil {
		t.Fatal("oversized alphabet accepted")
	}
}

func TestBadTables(t *testing.T) {
	// Length exceeding MaxCodeLen.
	w := &bitio.Writer{}
	w.WriteBits(1, 16) // one symbol
	w.WriteBits(50, 6) // bad length (>32 means 50&63, write 50)
	if _, err := ReadTable(bitio.NewReader(w.Bytes())); err == nil {
		t.Fatal("bad length accepted")
	}
	// Zero-run overrunning the symbol count.
	w = &bitio.Writer{}
	w.WriteBits(2, 16)
	w.WriteBits(0, 6)
	w.WriteBits(200, 8) // run of 201 > 2 symbols
	if _, err := ReadTable(bitio.NewReader(w.Bytes())); err == nil {
		t.Fatal("overrunning zero-run accepted")
	}
	// Truncated table.
	if _, err := ReadTable(bitio.NewReader([]byte{0x00})); err == nil {
		t.Fatal("truncated table accepted")
	}
}

func TestKraftViolation(t *testing.T) {
	// Three codes of length 1 violate Kraft; NewDecoder must reject.
	if _, err := NewDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("Kraft violation accepted")
	}
}

func TestDecodeGarbage(t *testing.T) {
	dec, err := NewDecoder([]uint8{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// All-ones stream long enough to overrun max length without a match is
	// impossible for a complete code; instead test truncated input.
	r := bitio.NewReader(nil)
	if _, err := dec.Decode(r); err == nil {
		t.Fatal("decode on empty input succeeded")
	}
}
