package huffman

import (
	"testing"

	"msync/internal/bitio"
)

// FuzzReadTable: arbitrary table bytes must never panic; a decoder built
// from a hostile table must still terminate on arbitrary streams.
func FuzzReadTable(f *testing.F) {
	code, _ := Build([]int64{5, 3, 2, 1, 1})
	w := &bitio.Writer{}
	code.WriteTable(w)
	f.Add(w.Bytes(), []byte{0xAB, 0xCD})
	f.Add([]byte{0, 3, 1, 2}, []byte{0xFF})
	f.Fuzz(func(t *testing.T, table, stream []byte) {
		dec, err := ReadTable(bitio.NewReader(table))
		if err != nil {
			return
		}
		r := bitio.NewReader(stream)
		for i := 0; i < 100; i++ {
			if _, err := dec.Decode(r); err != nil {
				return
			}
		}
	})
}
