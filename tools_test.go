package msync_test

// Exec-level smoke tests for the auxiliary binaries and every example:
// they must build, run, and produce their expected outputs.

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msync/internal/dirio"
)

func goRun(t *testing.T, timeout time.Duration, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Env = os.Environ()
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot exec go: %v", err)
	}
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, buf.String())
		}
	case <-time.After(timeout):
		cmd.Process.Kill()
		t.Fatalf("go run %v timed out\n%s", args, buf.String())
	}
	return buf.String()
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the examples")
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"./examples/quickstart"}, "transferred"},
		{[]string{"./examples/webmirror", "-pages", "60", "-nights", "2"}, "total over 2 nights"},
		{[]string{"./examples/backup"}, "msync saves"},
		{[]string{"./examples/adaptive"}, "200-file collection"},
		{[]string{"./examples/crawler"}, "signature-based total"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.args[0], func(t *testing.T) {
			t.Parallel()
			out := goRun(t, 3*time.Minute, c.args...)
			if !strings.Contains(out, c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

func TestMkcorpusWritesLoadableTrees(t *testing.T) {
	if testing.Short() {
		t.Skip("execs mkcorpus")
	}
	dir := t.TempDir()
	out := goRun(t, 2*time.Minute, "./cmd/mkcorpus", "-profile", "gcc", "-scale", "0.05", "-out", dir)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("unexpected output: %s", out)
	}
	v1, err := dirio.Load(filepath.Join(dir, "v1"))
	if err != nil || len(v1) == 0 {
		t.Fatalf("v1 unloadable: %v", err)
	}
	v2, err := dirio.Load(filepath.Join(dir, "v2"))
	if err != nil || len(v2) == 0 {
		t.Fatalf("v2 unloadable: %v", err)
	}
	// Web profile, two nights.
	webDir := t.TempDir()
	goRun(t, 2*time.Minute, "./cmd/mkcorpus", "-profile", "web", "-scale", "0.02", "-days", "0,1", "-out", webDir)
	n0, err := dirio.Load(filepath.Join(webDir, "night00"))
	if err != nil || len(n0) == 0 {
		t.Fatalf("night00 unloadable: %v", err)
	}
}

func TestMsbenchListAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("execs msbench")
	}
	out := goRun(t, 2*time.Minute, "./cmd/msbench", "-list")
	for _, id := range []string{"fig6.1", "table6.2", "ablate.decomp"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
	csv := goRun(t, 3*time.Minute, "./cmd/msbench", "-exp", "ablate.decomp", "-scale", "0.1", "-csv")
	if !strings.Contains(csv, "decomposable on,") {
		t.Fatalf("CSV output unexpected:\n%s", csv)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, map[string][]byte{"a": bytes.Repeat([]byte("data "), 500)}); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(clientDir, nil, map[string][]byte{"a": bytes.Repeat([]byte("data "), 499)}); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}
	out, err := exec.Command(bin, "-connect", addr, "-dir", clientDir, "-dry", "-json").Output()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	var m map[string]int64
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if m["total_bytes"] <= 0 || m["roundtrips"] <= 0 {
		t.Fatalf("implausible costs: %v", m)
	}
}
