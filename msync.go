// Package msync is a bandwidth-efficient file synchronization library for
// maintaining large replicated collections over slow networks, reproducing
// Suel, Noel and Trendafilov, "Improved File Synchronization Techniques for
// Maintaining Large Replicated Collections over Slow Networks" (ICDE 2004).
//
// # Model
//
// A server holds the current version of a collection of files; a client
// holds an outdated copy and wants to update it with minimum communication.
// Synchronization runs in two phases per changed file:
//
//  1. Map construction: a multi-round protocol in which the client builds an
//     approximate map of the server's file — regions it already holds
//     (found via recursively halved block hashes, continuation hashes that
//     extend confirmed matches, and group-testing verification) and regions
//     it does not.
//  2. Delta compression: the server encodes the unknown regions relative to
//     the known ones and ships the delta.
//
// All changed files share each protocol roundtrip, so latency stays flat as
// collections grow.
//
// # Quick start
//
//	a, b := msync.Pipe()
//	srv, _ := msync.NewServer(currentFiles, msync.DefaultConfig())
//	go srv.Serve(a)
//	res, err := msync.NewClient(outdatedFiles).Sync(b)
//	// res.Files now equals currentFiles; res.Costs says what it cost.
//
// For single files, SyncFile runs both sides in process and reports exact
// wire costs; see the examples directory for networked usage.
package msync

import (
	"io"
	"net"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/stats"
	"msync/internal/transport"
)

// Config tunes the synchronization protocol; see the field documentation in
// internal/core. Build one with DefaultConfig, BasicConfig or OneShotConfig
// and adjust fields as needed.
type Config = core.Config

// Costs is the per-session cost accounting: bytes by direction and phase,
// roundtrips, and per-technique counters.
type Costs = stats.Costs

// DefaultConfig enables all of the paper's techniques with its best
// practical settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// BasicConfig is the paper's "basic protocol": recursive halving and
// decomposable hashes with trivial per-candidate verification.
func BasicConfig() Config { return core.BasicConfig() }

// OneShotConfig is a single-roundtrip variant for small files or
// latency-bound links.
func OneShotConfig(blockSize int) Config { return core.OneShotConfig(blockSize) }

// FileResult reports a single-file synchronization.
type FileResult struct {
	// Data is the reconstructed current version.
	Data []byte
	// Costs is the exact wire cost (payload bytes, by direction and phase).
	Costs Costs
	// Rounds is the number of map-construction rounds used.
	Rounds int
}

// SyncFile synchronizes one file with both endpoints in process: old is the
// outdated copy, current the up-to-date one. It returns the reconstructed
// file (always equal to current) along with the exact number of bytes a
// networked run would have transferred. Use it to measure synchronization
// cost or as a reference for driving the engines manually.
func SyncFile(old, current []byte, cfg Config) (*FileResult, error) {
	res, err := core.SyncLocal(old, current, cfg)
	if err != nil {
		return nil, err
	}
	return &FileResult{Data: res.Output, Costs: res.Costs, Rounds: res.Rounds}, nil
}

// BroadcastResult reports a one-to-many file synchronization.
type BroadcastResult = core.BroadcastResult

// BroadcastFile synchronizes one current file to many clients holding
// different outdated versions, transmitting the hash payload once for all
// of them (the paper's server-broadcast scenario). Requires a one-shot
// configuration — see OneShotConfig — because only a single-round hash
// stream is independent of client feedback.
func BroadcastFile(current []byte, olds [][]byte, cfg Config) (*BroadcastResult, error) {
	return core.BroadcastSync(current, olds, cfg)
}

// Server serves the current version of a collection to synchronizing
// clients.
type Server struct {
	inner *collection.Server
}

// NewServer creates a Server over a path-keyed collection.
func NewServer(files map[string][]byte, cfg Config) (*Server, error) {
	inner, err := collection.NewServer(files, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Serve runs one synchronization session over conn and returns its costs.
func (s *Server) Serve(conn io.ReadWriter) (*Costs, error) {
	return s.inner.Serve(conn)
}

// ListenAndServe accepts TCP connections on addr and serves each one.
// It runs until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer l.Close()
	return s.ServeListener(l)
}

// ServeListener serves sessions from an existing listener.
func (s *Server) ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			_, _ = s.inner.Serve(c)
		}(conn)
	}
}

// EnablePush allows clients to push newer collections into this server.
// onUpdate (optional) receives the adopted collection after each push.
func (s *Server) EnablePush(onUpdate func(map[string][]byte)) {
	s.inner.AllowPush = true
	s.inner.OnUpdate = onUpdate
}

// SetTreeManifest selects merkle-tree change detection for this server's
// outgoing pushes (see Client.SetTreeManifest).
func (s *Server) SetTreeManifest(on bool) *Server {
	s.inner.TreeManifest = on
	return s
}

// Push updates a remote replica with this server's newer collection — the
// reverse transfer direction, for replicas that cannot dial out. The remote
// must have called EnablePush.
func (s *Server) Push(conn io.ReadWriter) (*Costs, error) {
	return s.inner.Push(conn)
}

// PushTCP dials addr and pushes over TCP.
func (s *Server) PushTCP(addr string) (*Costs, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return s.inner.Push(conn)
}

// Client synchronizes a local collection copy against a Server.
type Client struct {
	inner *collection.Client
}

// NewClient creates a Client over the local path-keyed collection.
func NewClient(files map[string][]byte) *Client {
	return &Client{inner: collection.NewClient(files)}
}

// SetTreeManifest switches change detection from the flat per-file
// fingerprint manifest to merkle-tree reconciliation. With n files of which
// c changed, the manifest costs O(n) bytes while the tree costs
// O(c·log n) — prefer it for large, mostly-unchanged collections.
func (c *Client) SetTreeManifest(on bool) *Client {
	c.inner.TreeManifest = on
	return c
}

// Result is the outcome of a collection synchronization.
type Result struct {
	// Files is the updated collection.
	Files map[string][]byte
	// Costs is the session cost accounting.
	Costs *Costs
	// PerFile attributes payload bytes to individual synchronized files.
	PerFile map[string]int64
}

// Sync runs one session over conn.
func (c *Client) Sync(conn io.ReadWriter) (*Result, error) {
	res, err := c.inner.Sync(conn)
	if err != nil {
		return nil, err
	}
	return &Result{Files: res.Files, Costs: res.Costs, PerFile: res.PerFile}, nil
}

// SyncTCP dials addr and synchronizes over TCP.
func (c *Client) SyncTCP(addr string) (*Result, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return c.Sync(conn)
}

// Pipe returns two connected in-memory endpoints, for in-process
// server/client pairs (tests, examples, benchmarks).
func Pipe() (serverEnd, clientEnd io.ReadWriteCloser) {
	a, b := transport.Pipe()
	return a, b
}

// LinkModel estimates wall-clock transfer time for given costs on a
// bandwidth/latency-constrained link.
type LinkModel = stats.LinkModel
