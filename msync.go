// Package msync is a bandwidth-efficient file synchronization library for
// maintaining large replicated collections over slow networks, reproducing
// Suel, Noel and Trendafilov, "Improved File Synchronization Techniques for
// Maintaining Large Replicated Collections over Slow Networks" (ICDE 2004).
//
// # Model
//
// A server holds the current version of a collection of files; a client
// holds an outdated copy and wants to update it with minimum communication.
// Synchronization runs in two phases per changed file:
//
//  1. Map construction: a multi-round protocol in which the client builds an
//     approximate map of the server's file — regions it already holds
//     (found via recursively halved block hashes, continuation hashes that
//     extend confirmed matches, and group-testing verification) and regions
//     it does not.
//  2. Delta compression: the server encodes the unknown regions relative to
//     the known ones and ships the delta.
//
// All changed files share each protocol roundtrip, so latency stays flat as
// collections grow.
//
// # Quick start
//
//	a, b := msync.Pipe()
//	srv, _ := msync.NewServer(currentFiles, msync.DefaultConfig())
//	go srv.Serve(a)
//	res, err := msync.NewClient(outdatedFiles).Sync(b)
//	// res.Files now equals currentFiles; res.Costs says what it cost.
//
// For single files, SyncFile runs both sides in process and reports exact
// wire costs; see the examples directory for networked usage.
package msync

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/dirio"
	"msync/internal/obs"
	"msync/internal/sigcache"
	"msync/internal/stats"
	"msync/internal/store"
	"msync/internal/transport"
	"msync/internal/wire"
)

// Config tunes the synchronization protocol; see the field documentation in
// internal/core. Build one with DefaultConfig, BasicConfig or OneShotConfig
// and adjust fields as needed.
type Config = core.Config

// Costs is the per-session cost accounting: bytes by direction and phase,
// roundtrips, and per-technique counters.
type Costs = stats.Costs

// DefaultConfig enables all of the paper's techniques with its best
// practical settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// BasicConfig is the paper's "basic protocol": recursive halving and
// decomposable hashes with trivial per-candidate verification.
func BasicConfig() Config { return core.BasicConfig() }

// OneShotConfig is a single-roundtrip variant for small files or
// latency-bound links.
func OneShotConfig(blockSize int) Config { return core.OneShotConfig(blockSize) }

// MapMode selects the map-construction strategy of a session; see the mode
// constants and WithMapMode.
type MapMode = core.MapMode

const (
	// MapHalving is the paper's recursive-halving map construction — the
	// default, and the only mode pre-CDC peers understand.
	MapHalving = core.MapHalving
	// MapCDC derives block boundaries from content-defined chunk cuts, so
	// insertions and deletions shift boundaries with the content instead of
	// breaking the fixed power-of-two grid. Strongest on shift-heavy data
	// (growing logs, database dumps, rebuilt archives).
	MapCDC = core.MapCDC
)

// ParseMapMode parses a mode name ("halving" or "cdc") as accepted by the
// CLI's -map-mode flag.
func ParseMapMode(s string) (MapMode, error) { return core.ParseMapMode(s) }

// FileResult reports a single-file synchronization.
type FileResult struct {
	// Data is the reconstructed current version.
	Data []byte
	// Costs is the exact wire cost (payload bytes, by direction and phase).
	Costs Costs
	// Rounds is the number of map-construction rounds used.
	Rounds int
}

// SyncFile synchronizes one file with both endpoints in process: old is the
// outdated copy, current the up-to-date one. It returns the reconstructed
// file (always equal to current) along with the exact number of bytes a
// networked run would have transferred. Use it to measure synchronization
// cost or as a reference for driving the engines manually.
func SyncFile(old, current []byte, cfg Config) (*FileResult, error) {
	return SyncFileContext(context.Background(), old, current, cfg)
}

// SyncFileContext is SyncFile with a cancellation checkpoint at every
// protocol round; SyncFile delegates here with context.Background().
func SyncFileContext(ctx context.Context, old, current []byte, cfg Config) (*FileResult, error) {
	res, err := core.SyncLocalContext(ctx, old, current, cfg)
	if err != nil {
		return nil, err
	}
	return &FileResult{Data: res.Output, Costs: res.Costs, Rounds: res.Rounds}, nil
}

// BroadcastResult reports a one-to-many file synchronization.
type BroadcastResult = core.BroadcastResult

// BroadcastFile synchronizes one current file to many clients holding
// different outdated versions, transmitting the hash payload once for all
// of them (the paper's server-broadcast scenario). Requires a one-shot
// configuration — see OneShotConfig — because only a single-round hash
// stream is independent of client feedback.
func BroadcastFile(current []byte, olds [][]byte, cfg Config) (*BroadcastResult, error) {
	return core.BroadcastSync(current, olds, cfg)
}

// ErrServerClosed is returned by ListenAndServe and ServeListener after
// Shutdown or Close.
var ErrServerClosed = errors.New("msync: server closed")

// ErrNotVersioned is returned by Server.Snapshot when the server was built
// without a version store (no WithStore option).
var ErrNotVersioned = collection.ErrNotVersioned

// BusyError is the typed refusal a Server sends when admission control
// sheds a connection (WithMaxSessions/WithMaxQueued): RetryAfter carries
// the server's suggested minimum wait before redialing. Sync and
// SyncContext surface it wrapped (inspect with errors.As); SyncTCP and
// SyncTCPContext with a WithRetry policy consume it themselves, folding
// the hint into the backoff schedule.
type BusyError = wire.BusyError

// Server serves the current version of a collection to synchronizing
// clients. Configure it at construction with Options (timeouts, push,
// session observation); control its listeners' lifecycle with Shutdown and
// Close.
type Server struct {
	inner *collection.Server
	opt   sessionOptions

	// st is the version store attached with WithStore, nil otherwise. It is
	// closed exactly once when the server shuts down.
	st        *store.Store
	storeOnce sync.Once

	// baseCtx is the parent of every session context; baseCancel fires on
	// forced shutdown so in-flight sessions abort at their next round.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// Admission control (WithMaxSessions/WithMaxQueued): sem holds one
	// token per running session, queue one per connection waiting for a
	// slot. Both nil when admission is unlimited. done closes when
	// shutdown begins so queued waiters shed instead of waiting forever.
	sem   chan struct{}
	queue chan struct{}
	done  chan struct{}

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  sync.WaitGroup
	shutdown  bool
}

// initServing finishes construction of the serving path once options are
// applied: base context, shutdown signal, and the admission semaphore/queue.
func (s *Server) initServing() {
	if s.opt.busyRetryAfter <= 0 {
		s.opt.busyRetryAfter = time.Second
	}
	if n := s.opt.maxSessions; n > 0 {
		s.sem = make(chan struct{}, n)
		if q := s.opt.maxQueued; q > 0 {
			s.queue = make(chan struct{}, q)
		}
	}
	s.done = make(chan struct{})
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
}

// NewServer creates a Server over a path-keyed collection. Options configure
// timeouts, push acceptance, the version store and session observation; see
// Option. Invalid options are reported wrapped in ErrBadOption.
func NewServer(files map[string][]byte, cfg Config, opts ...Option) (*Server, error) {
	s := &Server{
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(&s.opt)
	}
	if s.opt.err != nil {
		return nil, s.opt.err
	}
	if s.opt.workers != 0 {
		cfg.Workers = s.opt.workers
	}
	src, err := s.attachStore(collection.MapSource(files))
	if err != nil {
		return nil, err
	}
	inner, err := collection.NewServerSource(src, cfg)
	if err != nil {
		s.closeStore()
		return nil, err
	}
	s.finishServer(inner)
	return s, nil
}

// finishServer wires the applied options into the inner collection server
// and initializes the serving path.
func (s *Server) finishServer(inner *collection.Server) {
	s.inner = inner
	inner.TreeManifest = s.opt.treeManifest
	inner.RoundTimeout = s.opt.roundTimeout
	inner.HandshakeTimeout = s.opt.handshakeTimeout
	inner.AllowPush = s.opt.allowPush
	inner.OnUpdate = s.opt.onUpdate
	inner.Tracer = s.opt.tracer
	inner.Logger = s.opt.logger
	inner.MuxStreams = s.opt.muxStreams
	inner.Metrics = s.opt.metrics
	s.initServing()
}

// attachStore opens the version store configured with WithStore (if any) and
// wraps src so the server can answer announced versions from the journal.
func (s *Server) attachStore(src collection.Source) (collection.Source, error) {
	if s.opt.storeDir == "" {
		return src, nil
	}
	st, err := store.Open(s.opt.storeDir, store.Options{Budget: s.opt.storeBudget})
	if err != nil {
		return nil, err
	}
	s.st = st
	s.updateStoreGauges()
	return collection.NewStoreSource(src, st), nil
}

// updateStoreGauges refreshes the msync_store_versions and msync_store_bytes
// gauges from the store's current stats.
func (s *Server) updateStoreGauges() {
	r := s.opt.metrics
	if r == nil || s.st == nil {
		return
	}
	st := s.st.Stats()
	r.Gauge(obs.MetricStoreVersions).Set(int64(st.Versions))
	r.Gauge(obs.MetricStoreBytes).Set(st.SegmentBytes + st.JournalBytes)
}

// closeStore closes the attached version store exactly once; further
// Snapshot calls fail. No-op without WithStore.
func (s *Server) closeStore() error {
	var err error
	s.storeOnce.Do(func() {
		if s.st != nil {
			err = s.st.Close()
		}
	})
	return err
}

// Snapshot commits the server's current collection to the version store as a
// new immutable version and returns its number (idempotent when nothing
// changed since the last snapshot). Clients that announce a snapshotted
// version with WithBaseVersion are served its precomputed journal delta.
// Returns ErrNotVersioned when the server was built without WithStore.
func (s *Server) Snapshot() (uint64, error) {
	v, err := s.inner.Snapshot()
	if err != nil {
		return 0, err
	}
	s.updateStoreGauges()
	return v, nil
}

// NewDirServer creates a Server that streams the collection from a directory
// tree instead of holding it in memory: files are opened, hashed and released
// one at a time. With WithSignatureCache, fingerprints and block-hash tables
// persist across sessions so serving an unchanged tree again does almost no
// hashing. Per-file read/stat failures do not abort construction; they are
// returned as the second value (each wrapping the offending path) and the
// affected files are simply absent from the collection. The error result is
// non-nil only when root itself is unusable.
func NewDirServer(root string, cfg Config, opts ...Option) (*Server, []error, error) {
	s := &Server{
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(&s.opt)
	}
	if s.opt.err != nil {
		return nil, nil, s.opt.err
	}
	if s.opt.workers != 0 {
		cfg.Workers = s.opt.workers
	}
	tree, werrs, err := newTreeSource(root, &s.opt, collection.ConfigFingerprint(&cfg))
	if err != nil {
		return nil, werrs, err
	}
	src, err := s.attachStore(tree)
	if err != nil {
		return nil, werrs, err
	}
	inner, err := collection.NewServerSource(src, cfg)
	if err != nil {
		s.closeStore()
		return nil, werrs, err
	}
	s.finishServer(inner)
	return s, werrs, nil
}

// NewStoreServer creates a directory-backed Server with a version store at
// storeDir: NewDirServer plus WithStore(storeDir). Cut versions with
// Server.Snapshot; clients announcing one with WithBaseVersion receive its
// precomputed journal delta instead of a fresh map construction.
func NewStoreServer(root, storeDir string, cfg Config, opts ...Option) (*Server, []error, error) {
	opts = append(opts[:len(opts):len(opts)], WithStore(storeDir))
	return NewDirServer(root, cfg, opts...)
}

// newTreeSource opens root as a lazily streamed tree and wires in the
// signature cache configured by the options. The client side keys cached
// signatures with fingerprint 0: it caches only whole-file sums, which do
// not depend on the engine config.
func newTreeSource(root string, opt *sessionOptions, fingerprint uint64) (*collection.TreeSource, []error, error) {
	tree, werrs, err := dirio.OpenTree(root)
	var errs []error
	for _, we := range werrs {
		errs = append(errs, we)
	}
	if err != nil {
		return nil, errs, err
	}
	var cache *sigcache.Cache
	if opt.cacheEnabled {
		cache = sigcache.New(sigcache.Options{Dir: opt.cacheDir, MemBytes: opt.cacheMem})
	}
	return collection.NewTreeSource(tree, cache, fingerprint, opt.cacheParanoid), errs, nil
}

// Serve runs one synchronization session over conn and returns its costs.
// It is ServeContext with a background context.
func (s *Server) Serve(conn io.ReadWriter) (*Costs, error) {
	return s.ServeContext(context.Background(), conn)
}

// beginSession marks a session active in the metrics registry and returns
// the closer that records its outcome. The no-op path (no registry) costs a
// nil check.
func (o *sessionOptions) beginSession() func(costs *Costs, err error, dur time.Duration) {
	r := o.metrics
	if r == nil {
		return func(*Costs, error, time.Duration) {}
	}
	r.Gauge(obs.MetricSessionsActive).Inc()
	return func(costs *Costs, err error, dur time.Duration) {
		r.Gauge(obs.MetricSessionsActive).Dec()
		r.Counter(obs.MetricSessions).Inc()
		if err != nil {
			r.Counter(obs.MetricSessionErrors).Inc()
		}
		r.Histogram(obs.MetricSessionSeconds, obs.DurationBuckets).Observe(int64(dur))
		if costs != nil {
			obs.RecordCosts(r, costs)
		}
	}
}

// ServeContext runs one session over conn under ctx: cancellation aborts
// the session at the next protocol round, the WithTimeout option bounds the
// whole session, and WithRoundTimeout bounds each round. The session hook,
// if installed, observes the outcome.
func (s *Server) ServeContext(ctx context.Context, conn io.ReadWriter) (*Costs, error) {
	if s.opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.timeout)
		defer cancel()
	}
	start := time.Now()
	record := s.opt.beginSession()
	costs, err := s.inner.ServeContext(ctx, conn)
	record(costs, err, time.Since(start))
	if s.opt.hook != nil {
		ev := SessionEvent{Costs: costs, Err: err, Duration: time.Since(start)}
		if nc, ok := conn.(net.Conn); ok {
			ev.RemoteAddr = nc.RemoteAddr().String()
		}
		s.opt.hook(ev)
	}
	return costs, err
}

// ListenAndServe accepts TCP connections on addr and serves each one. It
// runs until the listener fails or the server is shut down, returning
// ErrServerClosed in the latter case.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer l.Close()
	return s.ServeListener(l)
}

// ServeListener serves sessions from an existing listener until it fails or
// the server is shut down (ErrServerClosed). Every session goroutine is
// tracked: Shutdown drains them gracefully and Close reaps them, so none
// leak past the server's lifecycle.
//
// Transient Accept failures — file-descriptor exhaustion (EMFILE/ENFILE),
// connections aborted before accept (ECONNABORTED) and anything a net.Error
// self-reports as temporary — do not end the loop; they are retried with
// exponential backoff from 5ms up to 1s. Each accepted connection passes
// admission control (WithMaxSessions/WithMaxQueued) before being served;
// over-capacity connections are refused with a BUSY answer.
func (s *Server) ServeListener(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	var acceptDelay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closing() {
				return ErrServerClosed
			}
			if !isTemporaryAccept(err) {
				return err
			}
			if acceptDelay == 0 {
				acceptDelay = 5 * time.Millisecond
			} else if acceptDelay *= 2; acceptDelay > time.Second {
				acceptDelay = time.Second
			}
			if r := s.opt.metrics; r != nil {
				r.Counter(obs.MetricAcceptRetries).Inc()
			}
			if lg := s.opt.logger; lg != nil {
				lg.Warn("msync: transient accept error; retrying",
					"error", err, "backoff", acceptDelay)
			}
			select {
			case <-time.After(acceptDelay):
			case <-s.done:
				return ErrServerClosed
			}
			continue
		}
		acceptDelay = 0
		if r := s.opt.metrics; r != nil {
			r.Counter(obs.MetricConnsAccepted).Inc()
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.sessions.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// isTemporaryAccept reports whether an Accept error is worth retrying:
// descriptor exhaustion and racily-aborted connections are load conditions
// that pass, not listener failures.
func isTemporaryAccept(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck // the accept-retry idiom net/http uses
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNABORTED, syscall.ECONNRESET,
		syscall.EMFILE, syscall.ENFILE, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// handleConn owns one accepted connection for its whole lifetime: admission
// (waiting in the queue if configured), the session itself, then outcome
// classification. It runs on its own goroutine, tracked by s.sessions.
func (s *Server) handleConn(c net.Conn) {
	defer s.sessions.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	release, ok := s.admit()
	if !ok {
		s.shed(c)
		return
	}
	defer release()
	if r := s.opt.metrics; r != nil {
		r.Counter(obs.MetricSessionsAdmitted).Inc()
	}
	_, err := s.ServeContext(s.baseCtx, c)
	s.recordSessionError(c, err)
}

// admit acquires a session slot, waiting in the bounded queue when the
// server is at capacity. ok=false means the connection must be shed: the
// queue was full, or shutdown began while waiting. The returned release
// frees the slot and must be called exactly once when ok.
func (s *Server) admit() (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return s.releaseSlot, true
	default:
	}
	if s.queue == nil {
		return nil, false
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, false
	}
	if r := s.opt.metrics; r != nil {
		r.Gauge(obs.MetricSessionsQueued).Inc()
	}
	defer func() {
		if r := s.opt.metrics; r != nil {
			r.Gauge(obs.MetricSessionsQueued).Dec()
		}
		<-s.queue
	}()
	select {
	case s.sem <- struct{}{}:
		return s.releaseSlot, true
	case <-s.done:
		return nil, false
	}
}

func (s *Server) releaseSlot() { <-s.sem }

// shed refuses an over-capacity connection: a BUSY frame with the
// configured retry-after hint, then a brief drain of the peer's unread
// input before close. The drain matters — the client has already sent its
// hello and manifest, and closing with unread receive data makes TCP reset
// the connection, destroying the BUSY answer in the peer's buffer before
// it can be read.
func (s *Server) shed(c net.Conn) {
	if r := s.opt.metrics; r != nil {
		r.Counter(obs.MetricSessionsShed).Inc()
	}
	if lg := s.opt.logger; lg != nil {
		lg.Warn("msync: shedding connection: server at capacity",
			"remote", c.RemoteAddr().String(), "retry_after", s.opt.busyRetryAfter)
	}
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	fw := wire.NewFrameWriter(c)
	if fw.WriteFrame(wire.FrameBusy, wire.EncodeBusy(s.opt.busyRetryAfter)) != nil || fw.Flush() != nil {
		return
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = io.Copy(io.Discard, c)
}

// recordSessionError classifies and logs one finished session's error —
// the serving loop used to discard these outright, hiding both client
// hang-ups and genuine server-side failures. Client aborts (peer hung up
// or reset mid-session) and server-side errors feed separate counters so
// an unhealthy server is distinguishable from unreliable clients.
func (s *Server) recordSessionError(c net.Conn, err error) {
	if err == nil {
		return
	}
	abort := isClientAbort(err)
	if r := s.opt.metrics; r != nil {
		if abort {
			r.Counter(obs.MetricClientAborts).Inc()
		} else {
			r.Counter(obs.MetricSessionFailures).Inc()
		}
	}
	if lg := s.opt.logger; lg != nil {
		if abort {
			lg.Warn("msync: session aborted by client",
				"remote", c.RemoteAddr().String(), "error", err)
		} else {
			lg.Error("msync: session failed",
				"remote", c.RemoteAddr().String(), "error", err)
		}
	}
}

// isClientAbort reports whether a session error traces back to the peer
// going away (EOF, reset, broken pipe, or our own shutdown closing the
// conn) rather than a protocol or local failure.
func isClientAbort(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// closing reports whether Shutdown or Close has begun.
func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// Shutdown gracefully stops the server: it closes all listeners (new dials
// are rejected immediately), lets in-flight sessions run to completion, and
// returns nil once they have drained. If ctx expires first, remaining
// sessions are aborted (their connections closed and contexts cancelled)
// and ctx's error is returned. Safe to call concurrently and repeatedly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginShutdown()
	done := make(chan struct{})
	go func() {
		s.sessions.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.closeStore()
	case <-ctx.Done():
		s.forceClose()
		<-done
		s.closeStore()
		return ctx.Err()
	}
}

// Close stops the server immediately: listeners and all in-flight session
// connections are closed and sessions are aborted. It returns once every
// session goroutine has exited.
func (s *Server) Close() error {
	s.beginShutdown()
	s.forceClose()
	s.sessions.Wait()
	return s.closeStore()
}

// beginShutdown marks the server closing, stops all listeners, and wakes
// queued admission waiters so they shed with BUSY instead of waiting for
// slots that will never free up for them.
func (s *Server) beginShutdown() {
	s.mu.Lock()
	if !s.shutdown {
		s.shutdown = true
		if s.done != nil {
			close(s.done)
		}
	}
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
}

// forceClose aborts in-flight sessions: cancels their base context (round
// checkpoints fire) and closes their connections (blocked I/O fails).
func (s *Server) forceClose() {
	s.baseCancel()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Push updates a remote replica with this server's newer collection — the
// reverse transfer direction, for replicas that cannot dial out. The remote
// must allow pushes (WithPush). It is PushContext with a background context.
func (s *Server) Push(conn io.ReadWriter) (*Costs, error) {
	return s.inner.Push(conn)
}

// PushContext runs Push under ctx with the configured timeouts: the
// WithTimeout option bounds the whole push and WithRoundTimeout each round.
func (s *Server) PushContext(ctx context.Context, conn io.ReadWriter) (*Costs, error) {
	if s.opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.timeout)
		defer cancel()
	}
	start := time.Now()
	record := s.opt.beginSession()
	costs, err := s.inner.PushContext(ctx, conn)
	record(costs, err, time.Since(start))
	return costs, err
}

// PushTCP dials addr and pushes over TCP. It is PushTCPContext with a
// background context.
func (s *Server) PushTCP(addr string) (*Costs, error) {
	return s.PushTCPContext(context.Background(), addr)
}

// PushTCPContext dials addr (bounded by WithDialTimeout) and pushes over
// TCP under ctx.
func (s *Server) PushTCPContext(ctx context.Context, addr string) (*Costs, error) {
	d := net.Dialer{Timeout: s.opt.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return s.PushContext(ctx, conn)
}

// Client synchronizes a local collection copy against a Server. Configure
// it at construction with Options: change-detection mode, session and round
// timeouts, and dial retry with backoff.
type Client struct {
	inner *collection.Client
	opt   sessionOptions
}

// NewClient creates a Client over the local path-keyed collection. Options
// configure change detection, timeouts and retry; see Option. NewClient
// cannot report invalid options — it ignores them, keeping the defaults; use
// NewClientE to have them checked.
func NewClient(files map[string][]byte, opts ...Option) *Client {
	c, _ := newClient(files, opts...)
	return c
}

// NewClientE is NewClient with option validation: it returns the first
// invalid option wrapped in ErrBadOption instead of silently ignoring it.
func NewClientE(files map[string][]byte, opts ...Option) (*Client, error) {
	c, err := newClient(files, opts...)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// newClient builds a map-backed client, returning the collected option
// error, if any; the client is usable either way (invalid options keep
// their defaults).
func newClient(files map[string][]byte, opts ...Option) (*Client, error) {
	c := &Client{inner: collection.NewClient(files)}
	for _, o := range opts {
		o(&c.opt)
	}
	c.applyClientOptions()
	return c, c.opt.err
}

// applyClientOptions wires the applied options into the inner collection
// client.
func (c *Client) applyClientOptions() {
	c.inner.TreeManifest = c.opt.treeManifest
	c.inner.SpeculativeDescent = c.opt.specDescent
	c.inner.CrossFileMatch = c.opt.crossFile
	c.inner.RoundTimeout = c.opt.roundTimeout
	c.inner.Workers = c.opt.workers
	c.inner.AnnounceVersion = c.opt.announce
	c.inner.BaseVersion = c.opt.baseVersion
	c.inner.Tracer = c.opt.tracer
	c.inner.Logger = c.opt.logger
	c.inner.MuxStreams = c.opt.muxStreams
	c.inner.MapMode = c.opt.mapMode
}

// NewDirClient creates a Client whose local copy is streamed from a
// directory tree instead of preloaded into memory. With WithSignatureCache,
// manifest fingerprints persist across runs so repeat syncs of a mostly
// unchanged tree cost a stat per file; with WithLazyResult the result holds
// only written content. Per-file read/stat failures are returned as the
// second value (the files are treated as absent); the error result is
// non-nil only when root itself is unusable.
func NewDirClient(root string, opts ...Option) (*Client, []error, error) {
	c := &Client{}
	for _, o := range opts {
		o(&c.opt)
	}
	if c.opt.err != nil {
		return nil, nil, c.opt.err
	}
	src, werrs, err := newTreeSource(root, &c.opt, 0)
	if err != nil {
		return nil, werrs, err
	}
	c.inner = collection.NewClientSource(src)
	c.applyClientOptions()
	c.inner.LazyResult = c.opt.lazyResult
	return c, werrs, nil
}

// Result is the outcome of a collection synchronization.
type Result struct {
	// Files is the updated collection. Under WithLazyResult it holds only
	// the files the session wrote; combined with Unchanged and Deleted it
	// still describes the complete outcome.
	Files map[string][]byte
	// Unchanged lists paths the session left untouched (WithLazyResult).
	Unchanged []string
	// Deleted lists local paths the server no longer has.
	Deleted []string
	// Costs is the session cost accounting.
	Costs *Costs
	// PerFile attributes payload bytes to individual synchronized files.
	PerFile map[string]int64
	// Version is the server's current store version, when the client
	// announced one with WithBaseVersion against a versioned server; 0
	// otherwise. Announce it on the next sync to ride the journal fast path.
	Version uint64
}

// Apply writes the result to a directory tree: Files are written (parent
// directories created) and Deleted paths removed, with emptied parents
// pruned. A convenience for directory-backed clients.
func (r *Result) Apply(root string) error {
	return dirio.ApplyChanges(root, r.Files, r.Deleted)
}

// Sync runs one session over conn. It is SyncContext with a background
// context.
func (c *Client) Sync(conn io.ReadWriter) (*Result, error) {
	return c.SyncContext(context.Background(), conn)
}

// SyncContext runs one session over conn under ctx: cancellation aborts the
// session at the next protocol round (interrupting blocked I/O when conn
// supports deadlines), the WithTimeout option bounds the whole session, and
// WithRoundTimeout bounds each round.
func (c *Client) SyncContext(ctx context.Context, conn io.ReadWriter) (*Result, error) {
	if c.opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opt.timeout)
		defer cancel()
	}
	start := time.Now()
	record := c.opt.beginSession()
	res, err := c.inner.SyncContext(ctx, conn)
	var costs *Costs
	if res != nil {
		costs = res.Costs
	}
	record(costs, err, time.Since(start))
	if err != nil {
		return nil, err
	}
	return &Result{
		Files:     res.Files,
		Unchanged: res.Unchanged,
		Deleted:   res.Deleted,
		Costs:     res.Costs,
		PerFile:   res.PerFile,
		Version:   res.Version,
	}, nil
}

// SyncTCP dials addr and synchronizes over TCP. It is SyncTCPContext with a
// background context.
func (c *Client) SyncTCP(addr string) (*Result, error) {
	return c.SyncTCPContext(context.Background(), addr)
}

// SyncTCPContext dials addr and synchronizes over TCP under ctx. With a
// WithRetry policy, dial failures and handshake failures (any error before
// file content is exchanged, including round timeouts while waiting for
// verdicts) are retried with exponential backoff and jitter; failures after
// the handshake are returned immediately. A BUSY load-shedding answer from
// the server is likewise retried, waiting at least the server's RetryAfter
// hint before the next attempt.
func (c *Client) SyncTCPContext(ctx context.Context, addr string) (*Result, error) {
	var res *Result
	err := transport.Retry(ctx, c.opt.clock, c.opt.retry, func(n int) error {
		if n > 1 {
			if r := c.opt.metrics; r != nil {
				r.Counter(obs.MetricRetries).Inc()
			}
			if l := c.opt.logger; l != nil {
				l.Warn("msync: retrying sync", "attempt", n, "addr", addr)
			}
		}
		d := net.Dialer{Timeout: c.opt.dialTimeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return err // dial failures are retryable
		}
		defer conn.Close()
		r, err := c.SyncContext(ctx, conn)
		if err != nil {
			var busy *BusyError
			if errors.As(err, &busy) {
				// Load-shedding answer: retry, waiting at least the
				// server's hint before the next attempt.
				if reg := c.opt.metrics; reg != nil {
					reg.Counter(obs.MetricBusyResponses).Inc()
				}
				if l := c.opt.logger; l != nil {
					l.Warn("msync: server busy", "attempt", n, "addr", addr,
						"retry_after", busy.RetryAfter)
				}
				return transport.RetryAfterHint(err, busy.RetryAfter)
			}
			if errors.Is(err, collection.ErrHandshake) {
				return err // no content exchanged: retry-safe
			}
			return transport.Permanent(err)
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Pipe returns two connected in-memory endpoints, for in-process
// server/client pairs (tests, examples, benchmarks).
func Pipe() (serverEnd, clientEnd io.ReadWriteCloser) {
	a, b := transport.Pipe()
	return a, b
}

// LinkModel estimates wall-clock transfer time for given costs on a
// bandwidth/latency-constrained link.
type LinkModel = stats.LinkModel
