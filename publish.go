package msync

import (
	"context"
	"net/http"

	"msync/internal/dirio"
	"msync/internal/pubsig"
)

// Publish mode turns the roles of the interactive protocol inside out for
// the one-writer/many-readers case (the paper's §1.1 scenario 3): the
// publisher snapshots a directory into immutable, content-addressed
// artifacts — a versioned manifest, per-file signatures and blobs, and
// version-to-version deltas — and any dumb HTTP surface (including a CDN)
// serves them. Readers do all matching locally and fetch only missing byte
// ranges, so the origin's work is one publish per version, independent of
// how many readers synchronize from it.

// ArtifactStore is the pluggable storage behind publish mode; artifacts are
// write-once and content-addressed. See NewArtifactDir for the filesystem
// implementation.
type ArtifactStore = pubsig.ArtifactStore

// NewArtifactDir opens (creating if needed) a filesystem-backed artifact
// store rooted at dir.
func NewArtifactDir(dir string) (ArtifactStore, error) {
	return pubsig.NewDirStore(dir)
}

// PublishDir snapshots the directory tree at root into the artifact store,
// reusing blobs and signatures already present from earlier versions. It
// returns the resulting version and whether a new one was created (an
// unchanged tree re-publishes to the same version for free). A blockSize of
// 0 uses the store's established (or default) signature block size.
func PublishDir(root string, store ArtifactStore, blockSize int) (version uint64, created bool, err error) {
	var opts []pubsig.PublisherOption
	if blockSize > 0 {
		opts = append(opts, pubsig.WithBlockSize(blockSize))
	}
	p, err := pubsig.NewPublisher(store, opts...)
	if err != nil {
		return 0, false, err
	}
	t, werrs, err := dirio.OpenTree(root)
	if err != nil {
		return 0, false, err
	}
	if len(werrs) > 0 {
		return 0, false, werrs[0]
	}
	return p.PublishTree(t)
}

// PublishHandler returns the read-side HTTP surface over published
// artifacts: /latest, /v/<n>/manifest, /v/<n>/sig/<hex>, /v/<n>/blob/<hex>,
// /since/<base> and /health, every artifact response carrying a strong
// stable ETag and an immutable Cache-Control so replicas and CDNs can serve
// it forever. See PROTOCOL.md "Published artifacts".
func PublishHandler(store ArtifactStore) (http.Handler, error) {
	return pubsig.NewServer(store)
}

// PublishSyncer reconciles a local directory tree against a publish-mode
// server (or any cache in front of one), fetching only missing byte ranges.
type PublishSyncer = pubsig.Syncer

// PublishSyncResult reports what a PublishSyncer run did and downloaded.
type PublishSyncResult = pubsig.SyncResult

// SyncPublished updates the tree at root from the publish-mode server at
// baseURL. baseVersion, when nonzero, announces the version the tree was
// last synced to, enabling the /since delta fast path; 0 fetches the full
// manifest. A nil client uses http.DefaultClient.
func SyncPublished(ctx context.Context, client *http.Client, baseURL, root string, baseVersion uint64) (*PublishSyncResult, error) {
	sy := &pubsig.Syncer{Client: client, BaseURL: baseURL, BaseVersion: baseVersion}
	return sy.Sync(ctx, root)
}
