package msync_test

// Tests for the session layer of the public API: functional options,
// *Context variants, graceful shutdown with drain, and dial/handshake retry
// with exponential backoff.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msync"
	"msync/internal/collection"
)

// sessionFiles is a small collection pair with one changed file.
func sessionFiles() (serverFiles, clientFiles map[string][]byte) {
	old := bytes.Repeat([]byte("all work and no play makes jack a dull boy. "), 300)
	cur := append(append([]byte{}, old[:4000]...), bytes.Repeat([]byte("NEW"), 1500)...)
	return map[string][]byte{"f.txt": cur}, map[string][]byte{"f.txt": old}
}

// fakeClock implements msync.Clock, recording sleeps without blocking.
type fakeClock struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (c *fakeClock) Now() time.Time { return time.Unix(0, 0) }

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.mu.Unlock()
	return nil
}

func (c *fakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// gatedConn blocks every Read until the gate channel is closed, pinning a
// session in flight for as long as the test needs.
type gatedConn struct {
	net.Conn
	gate <-chan struct{}
}

func (g *gatedConn) Read(p []byte) (int, error) {
	<-g.gate
	return g.Conn.Read(p)
}

// TestOptionsAPISync: the functional-options surface drives a full session
// (tree manifest + timeouts) with the same outcome as the legacy setters.
func TestOptionsAPISync(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithRoundTimeout(5*time.Second), msync.WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	a, b := msync.Pipe()
	go func() {
		defer a.Close()
		srv.Serve(a)
	}()
	cli := msync.NewClient(clientFiles,
		msync.WithTreeManifest(),
		msync.WithTimeout(time.Minute),
		msync.WithRoundTimeout(5*time.Second))
	res, err := cli.SyncContext(context.Background(), b)
	b.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
}

// TestSessionHookObservesOutcomes: the server-side hook sees one event per
// session with costs and error status.
func TestSessionHookObservesOutcomes(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	var events []msync.SessionEvent
	var mu sync.Mutex
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithSessionHook(func(ev msync.SessionEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	a, b := msync.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer a.Close()
		srv.Serve(a)
	}()
	if _, err := msync.NewClient(clientFiles).Sync(b); err != nil {
		t.Fatal(err)
	}
	b.Close()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || events[0].Err != nil || events[0].Costs == nil || events[0].Costs.Total() == 0 {
		t.Fatalf("hook saw %+v", events)
	}
}

// TestShutdownDrainsInFlight is the graceful-drain acceptance scenario: a
// server under Shutdown lets an in-flight sync run to completion while
// rejecting new dials, and Shutdown returns nil (drained, not forced).
func TestShutdownDrainsInFlight(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	addr := l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeListener(l) }()

	// Start a sync whose client stalls (gated reads) so the server-side
	// session is pinned in flight.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	gate := make(chan struct{})
	cliDone := make(chan error, 1)
	var res *msync.Result
	go func() {
		r, err := msync.NewClient(clientFiles).SyncContext(context.Background(), &gatedConn{Conn: raw, gate: gate})
		res = r
		cliDone <- err
	}()

	// Begin the graceful shutdown with a generous grace period.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(ctx) }()

	// New dials must start failing (listener closed) while the in-flight
	// session is still gated.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("server kept accepting dials after Shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a session was still in flight", err)
	default:
	}

	// Release the in-flight client; it must complete successfully.
	close(gate)
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("in-flight sync was not drained: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight sync never finished")
	}
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the last session drained")
	}
	if err := <-serveDone; !errors.Is(err, msync.ErrServerClosed) {
		t.Fatalf("ServeListener returned %v, want ErrServerClosed", err)
	}
}

// TestShutdownForceClosesAfterGrace: a session that never progresses is
// force-closed when the grace period expires, and no goroutine leaks.
func TestShutdownForceClosesAfterGrace(t *testing.T) {
	serverFiles, _ := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.ServeListener(l)

	// A peer that connects and never speaks: the server session blocks
	// reading HELLO.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond) // let the server accept it

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded after forced close", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("forced shutdown took %v", el)
	}
}

// TestCloseImmediate: Close reaps sessions without a grace period.
func TestCloseImmediate(t *testing.T) {
	serverFiles, _ := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeListener(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; !errors.Is(err, msync.ErrServerClosed) {
		t.Fatalf("ServeListener returned %v, want ErrServerClosed", err)
	}
}

// TestStalledEndpointRoundDeadline: syncing against a TCP endpoint that
// accepts and then stalls returns a deadline error within the configured
// round timeout.
func TestStalledEndpointRoundDeadline(t *testing.T) {
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the connection open, never respond
		}
	}()

	_, clientFiles := sessionFiles()
	cli := msync.NewClient(clientFiles, msync.WithRoundTimeout(150*time.Millisecond))
	start := time.Now()
	_, err = cli.SyncTCP(l.Addr().String())
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from stalled endpoint, got %v", err)
	}
	if elapsed < 140*time.Millisecond || elapsed > 10*time.Second {
		t.Fatalf("deadline fired after %v, configured round timeout 150ms", elapsed)
	}
}

// TestRetryBackoffRecovery is the retry acceptance scenario: the endpoint
// stalls the first two attempts (round deadline fires each time), then
// serves properly; the client succeeds on the third attempt with two
// jittered backoff sleeps recorded on the injected clock.
func TestRetryBackoffRecovery(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()

	var attempts atomic.Int32
	go func() {
		var held []net.Conn
		defer func() {
			for _, c := range held {
				c.Close()
			}
		}()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			if attempts.Add(1) <= 2 {
				held = append(held, c) // stall: hold open, never respond
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				srv.Serve(c)
			}(c)
		}
	}()

	clock := &fakeClock{}
	cli := msync.NewClient(clientFiles,
		msync.WithRoundTimeout(150*time.Millisecond),
		msync.WithClock(clock),
		msync.WithRetry(msync.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
			Multiplier:  2,
			Jitter:      0.5,
			Seed:        42,
		}))
	res, err := cli.SyncTCPContext(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatalf("sync did not recover via retry: %v", err)
	}
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("endpoint saw %d attempts, want 3", got)
	}
	slept := clock.Slept()
	if len(slept) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %v", slept)
	}
	for i, d := range slept {
		nominal := 100 * time.Millisecond << i
		if d < nominal/2 || d > nominal+nominal/2 {
			t.Fatalf("backoff %d = %v outside ±50%% jitter around %v", i, d, nominal)
		}
	}
}

// TestRetryBoundedAttempts: a permanently dead endpoint exhausts the
// bounded attempt budget and reports the failure.
func TestRetryBoundedAttempts(t *testing.T) {
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens: every dial fails

	_, clientFiles := sessionFiles()
	clock := &fakeClock{}
	cli := msync.NewClient(clientFiles,
		msync.WithClock(clock),
		msync.WithRetry(msync.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, Seed: 7}))
	_, err = cli.SyncTCPContext(context.Background(), addr)
	if err == nil {
		t.Fatal("sync to a dead endpoint succeeded")
	}
	if got := clock.Slept(); len(got) != 2 {
		t.Fatalf("3 attempts should record exactly 2 sleeps, got %v", got)
	}
}

// TestSyncFileContextCancel: the in-process per-file engine honors
// cancellation at round boundaries.
func TestSyncFileContextCancel(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := msync.SyncFileContext(ctx, clientFiles["f.txt"], serverFiles["f.txt"], msync.DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
