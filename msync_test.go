package msync_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"msync"
	"msync/internal/collection"
	"msync/internal/corpus"
)

// runSession synchronizes client files against server files over an
// in-memory pipe and returns the client's result.
func runSession(t *testing.T, serverFiles, clientFiles map[string][]byte, cfg msync.Config) *msync.Result {
	t.Helper()
	srv, err := msync.NewServer(serverFiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := msync.Pipe()
	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, serveErr = srv.Serve(a)
	}()
	res, err := msync.NewClient(clientFiles).Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	return res
}

func TestCollectionSyncEndToEnd(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.15).Generate(42)
	res := runSession(t, v2.Map(), v1.Map(), msync.DefaultConfig())
	if err := collection.VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	total := res.Costs.Total()
	t.Logf("collection sync: %d files, %d bytes corpus, cost %d bytes (%.2f%%), %d roundtrips",
		len(v2.Files), v2.TotalBytes(), total,
		100*float64(total)/float64(v2.TotalBytes()), res.Costs.Roundtrips)
	if total > int64(v2.TotalBytes())/2 {
		t.Errorf("sync cost %d too close to full transfer %d", total, v2.TotalBytes())
	}
	if res.Costs.Roundtrips > 40 {
		t.Errorf("roundtrips %d should be bounded regardless of file count", res.Costs.Roundtrips)
	}
}

func TestCollectionNewAndDeletedFiles(t *testing.T) {
	serverFiles := map[string][]byte{
		"keep.txt":   bytes.Repeat([]byte("stable content "), 100),
		"new.txt":    bytes.Repeat([]byte("brand new file "), 200),
		"change.txt": bytes.Repeat([]byte("version two of this file "), 400),
	}
	clientFiles := map[string][]byte{
		"keep.txt":   serverFiles["keep.txt"],
		"gone.txt":   []byte("this file was deleted on the server"),
		"change.txt": bytes.Repeat([]byte("version one of this file "), 400),
	}
	res := runSession(t, serverFiles, clientFiles, msync.DefaultConfig())
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if res.Costs.FilesUnchanged != 1 {
		t.Errorf("FilesUnchanged = %d, want 1", res.Costs.FilesUnchanged)
	}
}

func TestCollectionEmptySides(t *testing.T) {
	files := map[string][]byte{"a": []byte("hello"), "b": bytes.Repeat([]byte("x"), 5000)}
	// Empty client: everything arrives as new files.
	res := runSession(t, files, map[string][]byte{}, msync.DefaultConfig())
	if err := collection.VerifyAgainst(res.Files, files); err != nil {
		t.Fatal(err)
	}
	// Empty server: everything is deleted.
	res = runSession(t, map[string][]byte{}, files, msync.DefaultConfig())
	if len(res.Files) != 0 {
		t.Fatalf("expected empty result, got %d files", len(res.Files))
	}
}

func TestSyncFileConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	old := corpus.SourceText(rng, 200_000)
	cur := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 5, EditSize: 50, BurstSpread: 400}.Apply(rng, old)
	for _, tc := range []struct {
		name string
		cfg  msync.Config
	}{
		{"default", msync.DefaultConfig()},
		{"basic", msync.BasicConfig()},
		{"oneshot", msync.OneShotConfig(512)},
	} {
		res, err := msync.SyncFile(old, cur, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(res.Data, cur) {
			t.Fatalf("%s: mismatch", tc.name)
		}
		t.Logf("%s: %d bytes (%.2f%% of file), %d rounds",
			tc.name, res.Costs.Total(), 100*float64(res.Costs.Total())/float64(len(cur)), res.Rounds)
	}
}

func TestTCPSync(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.05).Generate(9)
	srv, err := msync.NewServer(v2.Map(), msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go srv.ServeListener(l)

	res, err := msync.NewClient(v1.Map()).SyncTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := collection.VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	t.Logf("tcp sync: %d bytes, %d roundtrips", res.Costs.Total(), res.Costs.Roundtrips)
}

// TestMuxStreamsOption: WithMuxStreams on both endpoints negotiates a
// multiplexed session through the public API, converges, and pays no more
// roundtrips than the legacy lockstep protocol (batched rounds should pay
// fewer whenever the corpus has files of uneven depth).
func TestMuxStreamsOption(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.1).Generate(21)
	legacy := runSession(t, v2.Map(), v1.Map(), msync.DefaultConfig())

	srv, err := msync.NewServer(v2.Map(), msync.DefaultConfig(), msync.WithMuxStreams(16))
	if err != nil {
		t.Fatal(err)
	}
	a, b := msync.Pipe()
	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, serveErr = srv.Serve(a)
	}()
	cli, err := msync.NewClientE(v1.Map(), msync.WithMuxStreams(16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	if err := collection.VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if res.Costs.Roundtrips > legacy.Costs.Roundtrips {
		t.Errorf("multiplexed session paid %d roundtrips, legacy %d",
			res.Costs.Roundtrips, legacy.Costs.Roundtrips)
	}
	t.Logf("mux: %d roundtrips vs legacy %d", res.Costs.Roundtrips, legacy.Costs.Roundtrips)

	if _, err := msync.NewClientE(nil, msync.WithMuxStreams(-1)); err == nil {
		t.Fatal("negative WithMuxStreams accepted")
	}
}

func TestBroadcastFile(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cur := corpus.SourceText(rng, 50_000)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 3, EditSize: 40, BurstSpread: 200}
	olds := [][]byte{em.Apply(rng, cur), em.Apply(rng, cur), nil}
	res, err := msync.BroadcastFile(cur, olds, msync.OneShotConfig(512))
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if !bytes.Equal(out, cur) {
			t.Fatalf("client %d mismatch", i)
		}
	}
	if res.Total() >= res.UnicastTotal() {
		t.Fatalf("broadcast %d not below unicast %d", res.Total(), res.UnicastTotal())
	}
}
