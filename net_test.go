package msync_test

import (
	"net"
	"testing"
)

// listenLoopback opens a loopback TCP listener, skipping environments where
// networking is unavailable.
func listenLoopback(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}
