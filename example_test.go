package msync_test

import (
	"fmt"
	"log"
	"strings"

	"msync"
)

// ExampleSyncFile measures the wire cost of synchronizing one file whose
// versions differ by a small edit.
func ExampleSyncFile() {
	old := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 500))
	current := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 500) +
		"appendix: one new line\n")

	res, err := msync.SyncFile(old, current, msync.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconstructed:", len(res.Data) == len(current))
	fmt.Println("cheap:", res.Costs.Total() < int64(len(current))/20)
	// Output:
	// reconstructed: true
	// cheap: true
}

// Example_collection synchronizes a small collection over an in-memory pipe.
func Example_collection() {
	serverFiles := map[string][]byte{
		"a.txt": []byte(strings.Repeat("stable content ", 200) + "v2"),
		"b.txt": []byte("brand new"),
	}
	clientFiles := map[string][]byte{
		"a.txt": []byte(strings.Repeat("stable content ", 200) + "v1"),
		"c.txt": []byte("deleted on the server"),
	}

	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	serverEnd, clientEnd := msync.Pipe()
	go func() {
		defer serverEnd.Close()
		srv.Serve(serverEnd)
	}()
	res, err := msync.NewClient(clientFiles).Sync(clientEnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("files:", len(res.Files))
	fmt.Println("a updated:", string(res.Files["a.txt"][len(res.Files["a.txt"])-2:]))
	_, hasStale := res.Files["c.txt"]
	fmt.Println("stale removed:", !hasStale)
	// Output:
	// files: 2
	// a updated: v2
	// stale removed: true
}
