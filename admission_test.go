package msync_test

// Tests for the server's admission-control layer: the concurrent-session
// cap with its bounded wait queue, BUSY load shedding with retry-after
// hints, transient accept-error recovery, and shutdown draining of queued
// but unadmitted connections.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msync"
	"msync/internal/collection"
	"msync/internal/obs"
	"msync/internal/wire"
)

// swarmRetryPolicy is generous enough that every client in an
// oversubscribed swarm eventually wins a slot.
func swarmRetryPolicy() msync.RetryPolicy {
	return msync.RetryPolicy{
		MaxAttempts: 60,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// TestAdmissionSwarm: 64 clients against a 4-slot server. Every client must
// converge byte-identically — either admitted directly, after queueing, or
// after a BUSY answer and a retried dial — and the admission accounting
// must balance: accepted == admitted + shed, with both gauges drained.
func TestAdmissionSwarm(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	reg := msync.NewMetricsRegistry()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithMaxSessions(4),
		msync.WithMaxQueued(8),
		msync.WithBusyRetryAfter(20*time.Millisecond),
		msync.WithMetrics(reg),
		msync.WithRoundTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ServeListener(l) }()

	const clients = 64
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := msync.NewClient(clientFiles, msync.WithRetry(swarmRetryPolicy()))
			res, err := cli.SyncTCP(l.Addr().String())
			if err != nil {
				t.Errorf("swarm client: %v", err)
				failures.Add(1)
				return
			}
			if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
				t.Errorf("swarm client diverged: %v", err)
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d clients failed", failures.Load(), clients)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, msync.ErrServerClosed) {
		t.Fatalf("ServeListener = %v, want ErrServerClosed", err)
	}

	snap := reg.Snapshot()
	accepted := snap.Counters[obs.MetricConnsAccepted]
	admitted := snap.Counters[obs.MetricSessionsAdmitted]
	shed := snap.Counters[obs.MetricSessionsShed]
	if accepted < clients {
		t.Errorf("accepted %d conns, want >= %d", accepted, clients)
	}
	if accepted != admitted+shed {
		t.Errorf("accounting broken: accepted %d != admitted %d + shed %d",
			accepted, admitted, shed)
	}
	if admitted < clients {
		t.Errorf("admitted %d sessions, want >= %d (every client succeeded)", admitted, clients)
	}
	if g := snap.Gauges[obs.MetricSessionsQueued]; g != 0 {
		t.Errorf("queued gauge = %d after drain, want 0", g)
	}
	if g := snap.Gauges[obs.MetricSessionsActive]; g != 0 {
		t.Errorf("active gauge = %d after drain, want 0", g)
	}
}

// TestBusySurfacesAsTypedError: with the queue disabled and the only slot
// pinned, a retryless client gets an error carrying *msync.BusyError with
// the server's configured hint.
func TestBusySurfacesAsTypedError(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithMaxSessions(1),
		msync.WithBusyRetryAfter(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	go srv.ServeListener(l)
	defer srv.Close()

	// Pin the single slot with an idle connection that never speaks.
	pin, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()
	waitForGauge(t, srv, l.Addr().String())

	_, err = msync.NewClient(clientFiles).SyncTCP(l.Addr().String())
	if err == nil {
		t.Fatal("want a busy error, got success")
	}
	var busy *msync.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("error %v does not carry *msync.BusyError", err)
	}
	if busy.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the configured 250ms", busy.RetryAfter)
	}
}

// waitForGauge blocks until the pinned connection above actually occupies
// the session slot (admission happens on the server's goroutine).
func waitForGauge(t *testing.T, srv *msync.Server, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// A second idle dial that gets BUSY proves the slot is taken.
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(time.Second))
		typ, _, err := wire.NewFrameReader(c).ReadFrame()
		c.Close()
		if err == nil && typ == wire.FrameBusy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("session slot never became occupied")
}

// tempAcceptErr simulates the transient failures (EMFILE, ECONNABORTED)
// that used to kill the accept loop.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "simulated transient accept failure" }
func (tempAcceptErr) Timeout() bool   { return false }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener fails its first n Accepts with a temporary error.
type flakyListener struct {
	net.Listener
	remaining atomic.Int64
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, tempAcceptErr{}
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTemporaryErrors pins the accept-loop fix: before,
// the first transient Accept failure returned from ServeListener and the
// server went deaf. Now it backs off, counts the retries, and keeps
// serving.
func TestAcceptLoopSurvivesTemporaryErrors(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	reg := msync.NewMetricsRegistry()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(), msync.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	inner, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	const flakes = 3
	fl := &flakyListener{Listener: inner}
	fl.remaining.Store(flakes)
	go srv.ServeListener(fl)
	defer srv.Close()

	res, err := msync.NewClient(clientFiles).SyncTCP(inner.Addr().String())
	if err != nil {
		t.Fatalf("sync after transient accept errors: %v", err)
	}
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters[obs.MetricAcceptRetries]; got != flakes {
		t.Fatalf("accept retries = %d, want %d", got, flakes)
	}
}

// TestShutdownShedsQueuedConns: a connection waiting in the admission queue
// when Shutdown begins is answered with BUSY and released — it neither gets
// served nor blocks the drain.
func TestShutdownShedsQueuedConns(t *testing.T) {
	serverFiles, _ := sessionFiles()
	reg := msync.NewMetricsRegistry()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithMaxSessions(1),
		msync.WithMaxQueued(4),
		msync.WithBusyRetryAfter(40*time.Millisecond),
		msync.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	go srv.ServeListener(l)

	// pin occupies the slot (admitted, then idle inside the handshake);
	// queued joins the wait queue behind it.
	pin, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()
	waitForOccupied := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters[obs.MetricSessionsAdmitted] < 1 {
		if time.Now().After(waitForOccupied) {
			t.Fatal("pin connection never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	for reg.Snapshot().Gauges[obs.MetricSessionsQueued] < 1 {
		if time.Now().After(waitForOccupied) {
			t.Fatal("second connection never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// The queued connection must now receive BUSY rather than wait forever.
	queued.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.NewFrameReader(queued).ReadFrame()
	if err != nil {
		t.Fatalf("reading shed answer: %v", err)
	}
	if typ != wire.FrameBusy {
		t.Fatalf("queued conn got frame %s, want BUSY", wire.FrameName(typ))
	}
	if hint := wire.DecodeBusy(payload).RetryAfter; hint != 40*time.Millisecond {
		t.Fatalf("shed hint = %v, want 40ms", hint)
	}
	queued.Close() // ends the shed path's input drain immediately

	// Release the pinned session so the graceful drain can finish.
	pin.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown = %v, want nil (queued conn must not block drain)", err)
	}

	snap := reg.Snapshot()
	if shed := snap.Counters[obs.MetricSessionsShed]; shed < 1 {
		t.Errorf("shed counter = %d, want >= 1", shed)
	}
	if g := snap.Gauges[obs.MetricSessionsQueued]; g != 0 {
		t.Errorf("queued gauge = %d after shutdown, want 0", g)
	}
	if aborts := snap.Counters[obs.MetricClientAborts]; aborts != 1 {
		t.Errorf("client aborts = %d, want 1 (the pinned conn we closed)", aborts)
	}
}

// TestHandshakeTimeoutFreesSlot: an idle dial holding the only session slot
// is evicted by WithHandshakeTimeout, letting a queued legitimate client
// proceed — without the deadline this test would hang at the sync.
func TestHandshakeTimeoutFreesSlot(t *testing.T) {
	serverFiles, clientFiles := sessionFiles()
	reg := msync.NewMetricsRegistry()
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithMaxSessions(1),
		msync.WithMaxQueued(2),
		msync.WithHandshakeTimeout(150*time.Millisecond),
		msync.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := listenLoopback(t)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	go srv.ServeListener(l)
	defer srv.Close()

	loris, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters[obs.MetricSessionsAdmitted] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow-loris dial never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// This client queues behind the loris and must be admitted once the
	// handshake deadline evicts it.
	res, err := msync.NewClient(clientFiles).SyncTCP(l.Addr().String())
	if err != nil {
		t.Fatalf("sync behind a slow-loris dial: %v", err)
	}
	if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if failsrv := reg.Snapshot().Counters[obs.MetricSessionFailures]; failsrv != 1 {
		t.Errorf("server-error counter = %d, want 1 (the evicted idle dial)", failsrv)
	}
}
