// Command mkcorpus writes the synthetic experiment corpora to disk so the
// msync CLI (and outside tools) can be exercised on them.
//
//	mkcorpus -profile gcc -out /tmp/corpus          # writes v1/ and v2/
//	mkcorpus -profile web -days 0,2,7 -out /tmp/web # one dir per night
//	mkcorpus -profile dbdump -out /tmp/dump         # adversarial CDC corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"strings"

	"msync/internal/corpus"
	"msync/internal/dirio"
)

func main() {
	var (
		profile = flag.String("profile", "gcc", "corpus profile: gcc, emacs, web, rename, deep, logs, logs-heavy, dbdump, vmimage, binrelease")
		out     = flag.String("out", "corpus", "output directory")
		scale   = flag.Float64("scale", 1.0, "corpus scale factor")
		seed    = flag.Int64("seed", 42, "generator seed")
		days    = flag.String("days", "0,1", "web profile: comma-separated nights to materialize")
	)
	flag.Parse()

	switch *profile {
	case "gcc", "emacs":
		p := corpus.GCCProfile(*scale)
		if *profile == "emacs" {
			p = corpus.EmacsProfile(*scale)
		}
		v1, v2 := p.Generate(*seed)
		mustWrite(filepath.Join(*out, "v1"), v1)
		mustWrite(filepath.Join(*out, "v2"), v2)
		fmt.Printf("wrote %s: v1 %d files (%d bytes), v2 %d files (%d bytes)\n",
			*out, len(v1.Files), v1.TotalBytes(), len(v2.Files), v2.TotalBytes())
	case "rename", "deep", "logs", "logs-heavy", "dbdump", "vmimage", "binrelease":
		var v1, v2 *corpus.Tree
		switch *profile {
		case "rename":
			v1, v2 = corpus.DefaultRenameProfile(*scale).Generate(*seed)
		case "deep":
			v1, v2 = corpus.DefaultDeepTreeProfile(*scale).Generate(*seed)
		case "logs":
			v1, v2 = corpus.DefaultLogAppendProfile(*scale).Generate(*seed)
		// The adversarial boundary-shift profiles behind the bench-cdc
		// matrix (DESIGN.md §16); the fixed default seed keeps the written
		// corpora deterministic across runs and machines.
		case "logs-heavy":
			v1, v2 = corpus.DefaultHeavyLogProfile(*scale).Generate(*seed)
		case "dbdump":
			v1, v2 = corpus.DefaultDBDumpProfile(*scale).Generate(*seed)
		case "vmimage":
			v1, v2 = corpus.DefaultVMImageProfile(*scale).Generate(*seed)
		case "binrelease":
			v1, v2 = corpus.DefaultBinaryReleaseProfile(*scale).Generate(*seed)
		}
		mustWrite(filepath.Join(*out, "v1"), v1)
		mustWrite(filepath.Join(*out, "v2"), v2)
		fmt.Printf("wrote %s: v1 %d files (%d bytes), v2 %d files (%d bytes)\n",
			*out, len(v1.Files), v1.TotalBytes(), len(v2.Files), v2.TotalBytes())
	case "web":
		wc := corpus.NewWebCollection(corpus.DefaultWebProfile(*scale), *seed)
		for _, s := range strings.Split(*days, ",") {
			day, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("mkcorpus: bad day %q", s)
			}
			t := wc.Version(day)
			dir := filepath.Join(*out, fmt.Sprintf("night%02d", day))
			mustWrite(dir, t)
			fmt.Printf("wrote %s: %d pages (%d bytes)\n", dir, len(t.Files), t.TotalBytes())
		}
	default:
		log.Fatalf("mkcorpus: unknown profile %q", *profile)
	}
}

func mustWrite(dir string, t *corpus.Tree) {
	if err := dirio.Apply(dir, nil, t.Map()); err != nil {
		log.Fatal(err)
	}
}
