// Command apidiff records and checks the exported API surface of the root
// msync package. `make api` regenerates API.txt; `make check` runs the
// -check mode so an accidental exported-surface change fails the build with
// a line-level diff instead of slipping into a release.
//
// The surface is purely syntactic (go/parser, no type checking): one sorted
// line per exported func, method, type, struct field, interface method,
// const and var, with types rendered from the source expression. That is
// enough to catch additions, removals and signature changes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		write = flag.String("write", "", "write the API surface to this file")
		check = flag.String("check", "", "compare the API surface against this file, exit 1 on drift")
		dir   = flag.String("dir", ".", "package directory to scan")
	)
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "apidiff: exactly one of -write or -check is required")
		os.Exit(2)
	}

	lines, err := surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		os.Exit(1)
	}
	got := strings.Join(lines, "\n") + "\n"

	if *write != "" {
		if err := os.WriteFile(*write, []byte(got), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apidiff:", err)
			os.Exit(1)
		}
		fmt.Printf("apidiff: wrote %d entries to %s\n", len(lines), *write)
		return
	}

	wantRaw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		os.Exit(1)
	}
	if diff := diffLines(splitLines(string(wantRaw)), lines); len(diff) > 0 {
		fmt.Fprintf(os.Stderr, "apidiff: exported API drifted from %s (run `make api` if intentional):\n", *check)
		for _, d := range diff {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("apidiff: %s matches (%d entries)\n", *check, len(lines))
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimRight(l, "\r"); l != "" {
			out = append(out, l)
		}
	}
	return out
}

// diffLines reports want/got set differences as "-"/"+" prefixed lines.
func diffLines(want, got []string) []string {
	in := func(set []string) map[string]bool {
		m := make(map[string]bool, len(set))
		for _, l := range set {
			m[l] = true
		}
		return m
	}
	wantSet, gotSet := in(want), in(got)
	var diff []string
	for _, l := range want {
		if !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	return diff
}

// surface parses the non-test files of the package in dir and renders its
// exported declarations as sorted, deduplicated lines.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var lines []string
	add := func(format string, args ...any) {
		l := fmt.Sprintf(format, args...)
		if !seen[l] {
			seen[l] = true
			lines = append(lines, l)
		}
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				collect(fset, decl, add)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

func collect(fset *token.FileSet, decl ast.Decl, add func(string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		if d.Recv != nil {
			recv := exprString(fset, d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
				return
			}
			add("method (%s) %s%s", recv, d.Name.Name, sigString(fset, d.Type))
			return
		}
		add("func %s%s", d.Name.Name, sigString(fset, d.Type))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				collectType(fset, s, add)
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, n := range s.Names {
					if n.IsExported() {
						add("%s %s", kw, n.Name)
					}
				}
			}
		}
	}
}

func collectType(fset *token.FileSet, s *ast.TypeSpec, add func(string, ...any)) {
	if !s.Name.IsExported() {
		return
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		add("type %s struct", s.Name.Name)
		for _, fld := range t.Fields.List {
			typ := exprString(fset, fld.Type)
			if len(fld.Names) == 0 { // embedded field
				if ast.IsExported(strings.TrimPrefix(typ, "*")) {
					add("field %s.%s (embedded)", s.Name.Name, typ)
				}
				continue
			}
			for _, n := range fld.Names {
				if n.IsExported() {
					add("field %s.%s %s", s.Name.Name, n.Name, typ)
				}
			}
		}
	case *ast.InterfaceType:
		add("type %s interface", s.Name.Name)
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				add("iface %s embeds %s", s.Name.Name, exprString(fset, m.Type))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					add("imethod %s.%s %s", s.Name.Name, n.Name, exprString(fset, m.Type))
				}
			}
		}
	default:
		add("type %s %s", s.Name.Name, exprString(fset, s.Type))
	}
}

// exprString renders a type expression as written in the source.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return normalize(buf.String())
}

// sigString renders a function signature without the leading "func".
func sigString(fset *token.FileSet, ft *ast.FuncType) string {
	return strings.TrimPrefix(exprString(fset, ft), "func")
}

// normalize collapses the whitespace printer.Fprint introduces for multi-line
// source types so every entry stays on one line.
func normalize(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
