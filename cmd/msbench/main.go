// Command msbench regenerates the paper's evaluation tables and figures
// (Section 6) plus this repository's ablations on synthetic corpora.
//
// Usage:
//
//	msbench                      # run everything at default scale
//	msbench -exp fig6.1          # one experiment
//	msbench -scale 2 -seed 7     # bigger corpus, different seed
//	msbench -list                # list experiment ids
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"msync/internal/bench"
	"msync/internal/pool"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (default: all)")
		scale     = flag.Float64("scale", 1.0, "corpus scale factor")
		seed      = flag.Int64("seed", 42, "corpus seed")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		scanJSON  = flag.String("scan-json", "", "write the parallel.scan report as JSON to this file and exit")
		cacheJSON = flag.String("cache-json", "", "write the cache.sync (repeat-sync signature cache) report as JSON to this file and exit")
		storeJSON = flag.String("store-json", "", "write the store.journal (versioned store, journal fast path) report as JSON to this file and exit")
		muxJSON   = flag.String("mux-json", "", "write the mux.pipeline (multiplexed streams vs per-file/lockstep sessions) report as JSON to this file and exit")
		manJSON   = flag.String("manifest-json", "", "write the manifest.scaling (flat vs merkle-tree change detection, cross-file matching) report as JSON to this file and exit")
		pubJSON   = flag.String("pub-json", "", "write the pub.fanout (published artifacts vs interactive protocol under N readers) report as JSON to this file and exit")
		cdcJSON   = flag.String("cdc-json", "", "write the cdc.map (CDC vs halving map construction on adversarial corpora) report as JSON to this file and exit")
		cacheMode = flag.String("cache", "off", "signature-cache condition for parallel.scan: off, cold or warm (never changes wire bytes)")
	)
	flag.Parse()

	if pool.Parallelism() == 1 {
		fmt.Fprintln(os.Stderr, "WARNING: effective parallelism is 1 (GOMAXPROCS or CPU count); "+
			"every -workers point collapses to the serial path and parallel speedups "+
			"cannot exceed 1.0. Re-run with GOMAXPROCS unset (or >= NumCPU) on a "+
			"multi-core host for meaningful scan-scaling numbers.")
	}

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, CacheMode: *cacheMode}

	writeReport := func(path string, gen func(bench.Options) ([]byte, error)) {
		out, err := gen(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *scanJSON != "" {
		writeReport(*scanJSON, bench.ScanJSON)
		return
	}
	if *cacheJSON != "" {
		writeReport(*cacheJSON, bench.CacheJSON)
		return
	}
	if *storeJSON != "" {
		writeReport(*storeJSON, bench.StoreJSON)
		return
	}
	if *muxJSON != "" {
		writeReport(*muxJSON, bench.MuxJSON)
		return
	}
	if *manJSON != "" {
		writeReport(*manJSON, bench.ManifestJSON)
		return
	}
	if *pubJSON != "" {
		writeReport(*pubJSON, bench.PubJSON)
		return
	}
	if *cdcJSON != "" {
		writeReport(*cdcJSON, bench.CDCJSON)
		return
	}

	ids := bench.Experiments()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			table.RenderCSV(os.Stdout)
			fmt.Println()
			continue
		}
		table.Render(os.Stdout)
		fmt.Printf("  [%s in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
