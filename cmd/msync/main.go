// Command msync synchronizes directory trees over TCP using the multi-round
// map-construction protocol.
//
// Server (holds the current data):
//
//	msync -serve :9440 -dir /data/current
//
// Client (holds an outdated copy; updates it in place):
//
//	msync -connect host:9440 -dir /data/replica
//	msync -connect host:9440 -dir /data/replica -dry   # report cost only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"msync"
	"msync/internal/dirio"
)

func main() {
	var (
		serve     = flag.String("serve", "", "listen address for server mode (e.g. :9440)")
		connect   = flag.String("connect", "", "server address for client mode")
		dir       = flag.String("dir", ".", "directory to serve or update")
		dry       = flag.Bool("dry", false, "client: do not write, just report cost")
		basic     = flag.Bool("basic", false, "use the basic protocol (no continuation/group testing)")
		minB      = flag.Int("bmin", 0, "override minimum block size (power of two)")
		tree      = flag.Bool("tree", false, "use merkle-tree change detection instead of a flat manifest")
		timeout   = flag.Duration("timeout", 0, "client: overall session deadline (0 = none)")
		jsonOut   = flag.Bool("json", false, "client: print costs as JSON")
		push      = flag.Bool("push", false, "client: push local (newer) data to the server instead of pulling")
		allowPush = flag.Bool("allow-push", false, "server: accept pushes and update -dir")
	)
	flag.Parse()

	switch {
	case *serve != "" && *connect != "":
		log.Fatal("msync: -serve and -connect are mutually exclusive")
	case *serve != "":
		runServer(*serve, *dir, buildConfig(*basic, *minB), *allowPush)
	case *connect != "" && *push:
		runPush(*connect, *dir, buildConfig(*basic, *minB), *tree, *timeout)
	case *connect != "":
		runClient(*connect, *dir, *dry, *tree, *timeout, *jsonOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildConfig(basic bool, minBlock int) msync.Config {
	cfg := msync.DefaultConfig()
	if basic {
		cfg = msync.BasicConfig()
	}
	if minBlock > 0 {
		cfg.MinBlockSize = minBlock
	}
	return cfg
}

func runServer(addr, dir string, cfg msync.Config, allowPush bool) {
	files, err := dirio.Load(dir)
	if err != nil {
		log.Fatalf("msync: loading %s: %v", dir, err)
	}
	total := 0
	for _, d := range files {
		total += len(d)
	}
	srv, err := msync.NewServer(files, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if allowPush {
		before := files
		srv.EnablePush(func(updated map[string][]byte) {
			if err := dirio.Apply(dir, before, updated); err != nil {
				log.Printf("msync: persisting push: %v", err)
				return
			}
			before = updated
			log.Printf("msync: adopted pushed update (%d files)", len(updated))
		})
	}
	log.Printf("msync: serving %d files (%d bytes) from %s on %s", len(files), total, dir, addr)
	log.Fatal(srv.ListenAndServe(addr))
}

func runPush(addr, dir string, cfg msync.Config, tree bool, timeout time.Duration) {
	files, err := dirio.Load(dir)
	if err != nil {
		log.Fatalf("msync: loading %s: %v", dir, err)
	}
	srv, err := msync.NewServer(files, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetTreeManifest(tree)
	conn, err := dial(addr, timeout)
	if err != nil {
		log.Fatalf("msync: dial: %v", err)
	}
	defer conn.Close()
	costs, err := srv.Push(conn)
	if err != nil {
		log.Fatalf("msync: push: %v", err)
	}
	fmt.Println(costs.String())
	log.Printf("msync: pushed %d files to %s", len(files), addr)
}

// dial connects to addr; a non-zero timeout bounds both the dial and the
// whole session (an absolute connection deadline).
func dial(addr string, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}

func runClient(addr, dir string, dry, tree bool, timeout time.Duration, jsonOut bool) {
	files, err := dirio.Load(dir)
	if err != nil {
		log.Fatalf("msync: loading %s: %v", dir, err)
	}
	conn, err := dial(addr, timeout)
	if err != nil {
		log.Fatalf("msync: dial: %v", err)
	}
	defer conn.Close()
	res, err := msync.NewClient(files).SetTreeManifest(tree).Sync(conn)
	if err != nil {
		log.Fatalf("msync: sync: %v", err)
	}
	if jsonOut {
		enc, err := json.Marshal(res.Costs)
		if err != nil {
			log.Fatalf("msync: encoding costs: %v", err)
		}
		fmt.Println(string(enc))
	} else {
		fmt.Println(res.Costs.String())
	}
	if dry {
		return
	}
	if err := dirio.Apply(dir, files, res.Files); err != nil {
		log.Fatalf("msync: writing results: %v", err)
	}
	log.Printf("msync: %s updated (%d files)", dir, len(res.Files))
}
