// Command msync synchronizes directory trees over TCP using the multi-round
// map-construction protocol.
//
// Server (holds the current data):
//
//	msync -serve :9440 -dir /data/current
//
// Client (holds an outdated copy; updates it in place):
//
//	msync -connect host:9440 -dir /data/replica
//	msync -connect host:9440 -dir /data/replica -dry   # report cost only
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// dials, drains in-flight sessions for -grace, then force-closes stragglers.
// Clients bound each protocol round with -round-timeout and retry transient
// dial/handshake failures -retry times with exponential backoff.
//
// Under load the server can bound its concurrency: -max-sessions caps the
// sessions served at once, -max-queued lets a burst wait for a slot, and
// anything beyond that is answered with a BUSY frame carrying a retry-after
// hint that retrying clients honor automatically. -handshake-timeout evicts
// dials that go idle before completing the opening exchange so they cannot
// pin scarce slots.
//
// Both roles accept -workers to bound local hashing/scanning parallelism
// (0 = all CPUs, 1 = serial). The setting never changes the bytes exchanged —
// each side picks its own value independently.
//
// With -cache-dir both roles keep a persistent signature cache keyed by
// (path, size, mtime, config): repeat syncs of unchanged files cost a stat
// instead of a hash. -cache-mem bounds the in-memory layer in MiB and
// -cache-paranoid re-verifies every hit by re-reading the file (for trees
// where edits may restore size and mtime). The cache is purely local — it is
// never sent over the wire, and traffic is byte-identical with or without it.
//
// Observability is opt-in on both roles and never changes the bytes on the
// wire:
//
//	-log-level info          structured logs (slog) to stderr
//	-trace-out trace.jsonl   per-phase span events as JSON Lines
//	-debug-addr 127.0.0.1:0  HTTP /metrics, /debug/vars and /debug/pprof/*
//
// With -store-dir the server keeps a persistent version store: immutable
// snapshots of the collection with precomputed per-version change journals.
// A serving process cuts a snapshot at startup; -snapshot cuts one and exits
// (printing the version) without serving. -store-budget bounds the store in
// MiB — oldest versions are garbage-collected first, the latest never is.
// Clients pass -base-version N (from a previous run's report) to be answered
// with the stored journal delta instead of fresh map construction; servers
// that cannot honor it fall back to the normal protocol automatically.
//
// Publish mode inverts the deployment for one-writer/many-readers fan-out:
//
//	msync -dir /data/current -publish-dir /data/artifacts              # snapshot a version
//	msync -dir /data/current -publish-dir /data/artifacts -serve :9441 # publish, then serve artifacts
//	msync -dir /data/replica -from-url http://host:9441                # reader: reconcile
//	msync -dir /data/replica -from-url http://host:9441 -base-version 3
//
// The publisher writes immutable, content-addressed artifacts (manifest,
// per-file signatures and blobs, version deltas); the server side is plain
// HTTP with strong ETags and immutable cache headers, so replicas and CDNs
// need no msync at all. Readers match locally and fetch only missing byte
// ranges; -base-version rides the /since delta path, and -dry and -json
// apply as in the interactive client.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"msync"
	"msync/internal/dirio"
	"msync/internal/obs"
)

func main() {
	var (
		serve     = flag.String("serve", "", "listen address for server mode (e.g. :9440)")
		connect   = flag.String("connect", "", "server address for client mode")
		dir       = flag.String("dir", ".", "directory to serve or update")
		dry       = flag.Bool("dry", false, "client: do not write, just report cost")
		basic     = flag.Bool("basic", false, "use the basic protocol (no continuation/group testing)")
		minB      = flag.Int("bmin", 0, "override minimum block size (power of two)")
		tree      = flag.Bool("tree", false, "use merkle-tree change detection instead of a flat manifest")
		specDesc  = flag.Bool("spec-descent", false, "client: with -tree, request speculative descent (multi-level answers, ~half the descent roundtrips)")
		crossFile = flag.Bool("cross-file", false, "client: with -tree, request cross-file matching (renames copied locally, moved-and-edited files synced from their old path)")
		timeout   = flag.Duration("timeout", 0, "overall session deadline (0 = none)")
		roundTO   = flag.Duration("round-timeout", 2*time.Minute, "per-round I/O deadline; stalled peers fail fast (0 = none)")
		retries   = flag.Int("retry", 3, "client: attempts for dial/handshake failures (1 = no retry)")
		grace     = flag.Duration("grace", 30*time.Second, "server: drain period for in-flight sessions on shutdown")
		maxSess   = flag.Int("max-sessions", 0, "server: max concurrent sessions; over-capacity dials queue or get a BUSY answer (0 = unlimited)")
		maxQueued = flag.Int("max-queued", 0, "server: connections allowed to wait for a session slot before shedding (0 = shed immediately)")
		handshake = flag.Duration("handshake-timeout", 0, "server: deadline for a session's opening exchange; evicts idle dials pinning slots (0 = none)")
		jsonOut   = flag.Bool("json", false, "client: print costs as JSON")
		push      = flag.Bool("push", false, "client: push local (newer) data to the server instead of pulling")
		allowPush = flag.Bool("allow-push", false, "server: accept pushes and update -dir")
		workers   = flag.Int("workers", 0, "worker goroutines for hashing/scanning (0 = all CPUs, 1 = serial); wire output is identical for every value")
		muxWidth  = flag.Int("mux-streams", 0, "multiplexed streams per session: clients request the width, servers cap it; interleaves per-file rounds on one connection (0 = legacy lockstep)")
		mapMode   = flag.String("map-mode", "halving", "client: map-construction mode to request (halving, cdc); cdc derives block boundaries from content-defined chunks — best for shift-heavy data; servers that don't support it fall back to halving")
		cacheDir  = flag.String("cache-dir", "", "persistent signature cache directory; repeat syncs of unchanged files skip hashing (never changes the bytes on the wire)")
		cacheMem  = flag.Int64("cache-mem", 64, "signature cache in-memory budget in MiB")
		paranoid  = flag.Bool("cache-paranoid", false, "re-verify every signature cache hit by re-reading the file (catches edits that restore size+mtime)")
		logLevel  = flag.String("log-level", "", "structured logging to stderr at this level (debug, info, warn, error); empty disables")
		traceOut  = flag.String("trace-out", "", "write per-phase trace events as JSON Lines to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (e.g. 127.0.0.1:6060)")

		publishDir = flag.String("publish-dir", "", "publish mode: artifact-store directory; alone, snapshot -dir into versioned artifacts and exit; with -serve, publish then serve the artifact HTTP surface")
		fromURL    = flag.String("from-url", "", "publish mode: update -dir from this publish-server base URL (pairs with -base-version, -dry, -json)")

		storeDir    = flag.String("store-dir", "", "server: persistent version-store directory; snapshots with change journals answer announcing clients without map construction")
		storeBudget = flag.Int64("store-budget", 0, "server: version-store size budget in MiB; oldest versions are garbage-collected first (0 = unlimited)")
		snapshot    = flag.Bool("snapshot", false, "cut one store version from -dir into -store-dir, print it, and exit (no serving)")
		baseVersion = flag.Int64("base-version", -1, "client: announce this store version as the local copy's base; a server holding it answers from its journal (-1 = no announcement)")
	)
	flag.Parse()

	validateFlags(*workers, *retries, *cacheMem, *maxSess, *maxQueued)
	if *muxWidth < 0 {
		fatalf("msync: -mux-streams must be >= 0 (got %d)", *muxWidth)
	}
	if *storeBudget < 0 {
		fatalf("msync: -store-budget must be >= 0 (got %d)", *storeBudget)
	}
	if (*storeBudget > 0 || *snapshot) && *storeDir == "" {
		fatalf("msync: -store-budget and -snapshot require -store-dir")
	}
	extra := cacheOptions(*cacheDir, *cacheMem, *paranoid)
	obsOpts, obsClose := obsSetup(*debugAddr, *traceOut, *logLevel)
	extra = append(extra, obsOpts...)
	extra = append(extra, storeOptions(*storeDir, *storeBudget)...)
	if *muxWidth > 0 {
		extra = append(extra, msync.WithMuxStreams(*muxWidth))
	}
	mm, err := msync.ParseMapMode(*mapMode)
	if err != nil {
		fatalf("msync: %v", err)
	}
	if mm != msync.MapHalving {
		extra = append(extra, msync.WithMapMode(mm))
	}
	if *specDesc {
		extra = append(extra, msync.WithSpeculativeDescent())
	}
	if *crossFile {
		extra = append(extra, msync.WithCrossFileMatch())
	}
	switch {
	case *serve != "" && *connect != "":
		fatalf("msync: -serve and -connect are mutually exclusive")
	case *fromURL != "" && (*serve != "" || *connect != "" || *publishDir != ""):
		fatalf("msync: -from-url is exclusive with -serve, -connect and -publish-dir")
	case *publishDir != "" && *connect != "":
		fatalf("msync: -publish-dir cannot be combined with -connect")
	case *fromURL != "":
		runPublishSync(*fromURL, *dir, *dry, *baseVersion, *jsonOut)
		obsClose()
	case *publishDir != "" && *serve != "":
		code := runPublishServe(*serve, *dir, *publishDir, *grace)
		obsClose()
		os.Exit(code)
	case *publishDir != "":
		runPublish(*dir, *publishDir)
		obsClose()
	case *snapshot:
		runSnapshot(*dir, buildConfig(*basic, *minB), *workers, extra)
		obsClose()
	case *serve != "":
		extra = append(extra,
			msync.WithMaxSessions(*maxSess),
			msync.WithMaxQueued(*maxQueued),
			msync.WithHandshakeTimeout(*handshake))
		code := runServer(*serve, *dir, buildConfig(*basic, *minB), *allowPush, *storeDir != "", *timeout, *roundTO, *grace, *workers, extra)
		obsClose()
		os.Exit(code)
	case *connect != "" && *push:
		runPush(*connect, *dir, buildConfig(*basic, *minB), *tree, *timeout, *roundTO, *workers, extra)
	case *connect != "":
		runClient(*connect, *dir, *dry, *tree, *timeout, *roundTO, *retries, *baseVersion, *jsonOut, *workers, extra)
	default:
		flag.Usage()
		os.Exit(2)
	}
	obsClose()
}

// runPublish snapshots dir into the artifact store and prints the version.
// Publishing an unchanged tree is free and reuses the existing version.
func runPublish(dir, artifactDir string) {
	store, err := msync.NewArtifactDir(artifactDir)
	if err != nil {
		log.Fatalf("msync: opening artifact store %s: %v", artifactDir, err)
	}
	v, created, err := msync.PublishDir(dir, store, 0)
	if err != nil {
		log.Fatalf("msync: publish: %v", err)
	}
	if created {
		log.Printf("msync: published %s as v%d into %s", dir, v, artifactDir)
	} else {
		log.Printf("msync: %s unchanged, still v%d", dir, v)
	}
	fmt.Printf("v%d\n", v)
}

// runPublishServe publishes dir, then serves the artifact HTTP surface:
// /latest, /v/<n>/manifest, /v/<n>/sig/<hex>, /v/<n>/blob/<hex>,
// /since/<base> and /health. The server performs no per-reader computation;
// any HTTP cache in front of it can absorb the read load.
func runPublishServe(addr, dir, artifactDir string, grace time.Duration) int {
	store, err := msync.NewArtifactDir(artifactDir)
	if err != nil {
		log.Fatalf("msync: opening artifact store %s: %v", artifactDir, err)
	}
	v, created, err := msync.PublishDir(dir, store, 0)
	if err != nil {
		log.Fatalf("msync: publish: %v", err)
	}
	h, err := msync.PublishHandler(store)
	if err != nil {
		log.Fatalf("msync: publish server: %v", err)
	}
	if created {
		log.Printf("msync: published %s as v%d; serving artifacts on %s", dir, v, addr)
	} else {
		log.Printf("msync: serving v%d (unchanged) on %s", v, addr)
	}

	srv := &http.Server{Addr: addr, Handler: h}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan int, 1)
	go func() {
		sig := <-sigc
		log.Printf("msync: %v: draining requests (grace %v)", sig, grace)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("msync: forced shutdown: %v", err)
			drained <- 1
			return
		}
		drained <- 0
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	return <-drained
}

// runPublishSync updates dir from a publish server, announcing baseVersion
// (when >= 0) for the /since delta fast path.
func runPublishSync(url, dir string, dry bool, baseVersion int64, jsonOut bool) {
	sy := &msync.PublishSyncer{BaseURL: url, DryRun: dry}
	if baseVersion > 0 {
		sy.BaseVersion = uint64(baseVersion)
	}
	res, err := sy.Sync(context.Background(), dir)
	if err != nil {
		log.Fatalf("msync: publish sync: %v", err)
	}
	if jsonOut {
		enc, err := json.Marshal(res)
		if err != nil {
			log.Fatalf("msync: encoding result: %v", err)
		}
		fmt.Println(string(enc))
	} else {
		fmt.Printf("v%d: %d synced, %d full, %d unchanged, %d deleted; %d bytes down (delta path: %v)\n",
			res.Version, res.FilesSynced, res.FilesFull, res.FilesUnchanged, res.FilesDeleted,
			res.BytesDown, res.DeltaPath)
	}
	log.Printf("msync: %s at v%d (pass -base-version %d next time)", dir, res.Version, res.Version)
}

// fatalf reports a usage or setup error as one stderr line and exits with
// status 2 (the flag package's own usage-error status).
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// validateFlags rejects numeric flag values the lower layers would otherwise
// silently misinterpret (a negative worker count reads as "all CPUs", a
// negative retry budget as "never even try").
func validateFlags(workers, retries int, cacheMem int64, maxSess, maxQueued int) {
	if workers < 0 {
		fatalf("msync: -workers must be >= 0 (got %d)", workers)
	}
	if retries < 0 {
		fatalf("msync: -retry must be >= 0 (got %d)", retries)
	}
	if cacheMem < 0 {
		fatalf("msync: -cache-mem must be >= 0 (got %d)", cacheMem)
	}
	if maxSess < 0 {
		fatalf("msync: -max-sessions must be >= 0 (got %d)", maxSess)
	}
	if maxQueued < 0 {
		fatalf("msync: -max-queued must be >= 0 (got %d)", maxQueued)
	}
	if maxQueued > 0 && maxSess == 0 {
		fatalf("msync: -max-queued requires -max-sessions")
	}
}

// obsSetup wires the observability flags: structured logging, JSONL span
// tracing, and the HTTP debug endpoint (metrics + pprof). Malformed values
// are rejected up front with a one-line error. The returned cleanup closes
// the trace file on orderly exits; trace writes are unbuffered, so nothing
// is lost on the log.Fatal paths that bypass it.
func obsSetup(debugAddr, traceOut, logLevel string) ([]msync.Option, func()) {
	var opts []msync.Option
	cleanup := func() {}
	if logLevel != "" {
		lvl, err := obs.ParseLevel(logLevel)
		if err != nil {
			fatalf("msync: -log-level: %v", err)
		}
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
		opts = append(opts, msync.WithLogger(slog.New(h)))
	}
	if traceOut != "" {
		tr, err := msync.OpenJSONLTracer(traceOut)
		if err != nil {
			fatalf("msync: -trace-out: %v", err)
		}
		opts = append(opts, msync.WithTracer(tr))
		cleanup = func() {
			if err := tr.Close(); err != nil {
				log.Printf("msync: trace output: %v", err)
			}
		}
	}
	if debugAddr != "" {
		// Listen now so a malformed or busy address fails the command
		// instead of surfacing as a dead endpoint mid-sync.
		l, err := net.Listen("tcp", debugAddr)
		if err != nil {
			fatalf("msync: -debug-addr %q: %v", debugAddr, err)
		}
		reg := msync.NewMetricsRegistry()
		opts = append(opts, msync.WithMetrics(reg))
		go func() { _ = http.Serve(l, obs.DebugMux(reg)) }()
		log.Printf("msync: debug endpoint on http://%s/metrics", l.Addr())
	}
	return opts, cleanup
}

// storeOptions translates the -store-* flags into Options.
func storeOptions(dir string, budgetMiB int64) []msync.Option {
	if dir == "" {
		return nil
	}
	opts := []msync.Option{msync.WithStore(dir)}
	if budgetMiB > 0 {
		opts = append(opts, msync.WithStoreBudget(budgetMiB<<20))
	}
	return opts
}

// runSnapshot cuts one store version from dir and exits: the offline way to
// record history between serving runs (the serving path snapshots at
// startup by itself).
func runSnapshot(dir string, cfg msync.Config, workers int, extra []msync.Option) {
	opts := append([]msync.Option{msync.WithWorkers(workers)}, extra...)
	srv, werrs, err := msync.NewDirServer(dir, cfg, opts...)
	for _, we := range werrs {
		log.Printf("msync: warning: %v", we)
	}
	if err != nil {
		log.Fatalf("msync: opening %s: %v", dir, err)
	}
	v, err := srv.Snapshot()
	if err != nil {
		srv.Close()
		log.Fatalf("msync: snapshot: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("msync: closing store: %v", err)
	}
	fmt.Printf("v%d\n", v)
}

// cacheOptions translates the -cache-* flags into Options. The cache is
// enabled only when -cache-dir is set: without persistence, one-shot CLI
// processes have nothing to warm.
func cacheOptions(dir string, memMiB int64, paranoid bool) []msync.Option {
	if dir == "" {
		return nil
	}
	opts := []msync.Option{msync.WithSignatureCache(dir, memMiB<<20)}
	if paranoid {
		opts = append(opts, msync.WithParanoidCache())
	}
	return opts
}

func buildConfig(basic bool, minBlock int) msync.Config {
	cfg := msync.DefaultConfig()
	if basic {
		cfg = msync.BasicConfig()
	}
	if minBlock > 0 {
		cfg.MinBlockSize = minBlock
	}
	return cfg
}

func runServer(addr, dir string, cfg msync.Config, allowPush, store bool, timeout, roundTO, grace time.Duration, workers int, extra []msync.Option) int {
	opts := []msync.Option{
		msync.WithTimeout(timeout),
		msync.WithRoundTimeout(roundTO),
		msync.WithWorkers(workers),
		msync.WithSessionHook(func(ev msync.SessionEvent) {
			if ev.Err != nil {
				log.Printf("msync: session %s failed after %v: %v", ev.RemoteAddr, ev.Duration.Round(time.Millisecond), ev.Err)
				return
			}
			log.Printf("msync: session %s: %d bytes in %v", ev.RemoteAddr, ev.Costs.Total(), ev.Duration.Round(time.Millisecond))
		}),
	}
	opts = append(opts, extra...)

	var srv *msync.Server
	var err error
	if allowPush {
		// A receiving server materializes the collection: adopting a push
		// needs the full before-map to compute deletions on disk.
		files, err := dirio.Load(dir)
		if err != nil {
			log.Fatalf("msync: loading %s: %v", dir, err)
		}
		before := files
		opts = append(opts, msync.WithPush(func(updated map[string][]byte) {
			if err := dirio.Apply(dir, before, updated); err != nil {
				log.Printf("msync: persisting push: %v", err)
				return
			}
			before = updated
			log.Printf("msync: adopted pushed update (%d files)", len(updated))
		}))
		srv, err = msync.NewServer(files, cfg, opts...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("msync: serving %d files from %s on %s", len(files), dir, addr)
	} else {
		var werrs []error
		srv, werrs, err = msync.NewDirServer(dir, cfg, opts...)
		for _, we := range werrs {
			log.Printf("msync: warning: %v", we)
		}
		if err != nil {
			log.Fatalf("msync: opening %s: %v", dir, err)
		}
		log.Printf("msync: serving %s on %s (streamed)", dir, addr)
	}
	if store {
		// Record the state being served so announcing clients can ride the
		// journal from here on.
		v, err := srv.Snapshot()
		if err != nil {
			log.Fatalf("msync: snapshot: %v", err)
		}
		log.Printf("msync: store version v%d", v)
	}

	// SIGINT/SIGTERM trigger a graceful drain bounded by -grace. The
	// accept loop returns ErrServerClosed as soon as the drain begins, so
	// main must wait for the drain itself before exiting.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan int, 1)
	go func() {
		sig := <-sigc
		log.Printf("msync: %v: draining sessions (grace %v)", sig, grace)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("msync: forced shutdown: %v", err)
			drained <- 1
			return
		}
		log.Print("msync: drained cleanly")
		drained <- 0
	}()

	err = srv.ListenAndServe(addr)
	if err != nil && err != msync.ErrServerClosed {
		log.Fatal(err)
	}
	return <-drained
}

func runPush(addr, dir string, cfg msync.Config, tree bool, timeout, roundTO time.Duration, workers int, extra []msync.Option) {
	opts := []msync.Option{msync.WithTimeout(timeout), msync.WithRoundTimeout(roundTO), msync.WithWorkers(workers)}
	opts = append(opts, extra...)
	if tree {
		opts = append(opts, msync.WithTreeManifest())
	}
	srv, werrs, err := msync.NewDirServer(dir, cfg, opts...)
	for _, we := range werrs {
		log.Printf("msync: warning: %v", we)
	}
	if err != nil {
		log.Fatalf("msync: opening %s: %v", dir, err)
	}
	costs, err := srv.PushTCP(addr)
	if err != nil {
		log.Fatalf("msync: push: %v", err)
	}
	fmt.Println(costs.String())
	log.Printf("msync: pushed %s to %s", dir, addr)
}

func runClient(addr, dir string, dry, tree bool, timeout, roundTO time.Duration, retries int, baseVersion int64, jsonOut bool, workers int, extra []msync.Option) {
	retry := msync.DefaultRetryPolicy()
	retry.MaxAttempts = retries
	opts := []msync.Option{
		msync.WithTimeout(timeout),
		msync.WithRoundTimeout(roundTO),
		msync.WithDialTimeout(timeout),
		msync.WithRetry(retry),
		msync.WithWorkers(workers),
		msync.WithLazyResult(),
	}
	opts = append(opts, extra...)
	if tree {
		opts = append(opts, msync.WithTreeManifest())
	}
	if baseVersion >= 0 {
		opts = append(opts, msync.WithBaseVersion(uint64(baseVersion)))
	}
	cl, werrs, err := msync.NewDirClient(dir, opts...)
	for _, we := range werrs {
		log.Printf("msync: warning: %v", we)
	}
	if err != nil {
		log.Fatalf("msync: opening %s: %v", dir, err)
	}
	res, err := cl.SyncTCP(addr)
	if err != nil {
		log.Fatalf("msync: sync: %v", err)
	}
	if jsonOut {
		enc, err := json.Marshal(res.Costs)
		if err != nil {
			log.Fatalf("msync: encoding costs: %v", err)
		}
		fmt.Println(string(enc))
	} else {
		fmt.Println(res.Costs.String())
	}
	if dry {
		return
	}
	if err := res.Apply(dir); err != nil {
		log.Fatalf("msync: writing results: %v", err)
	}
	log.Printf("msync: %s updated (%d written, %d unchanged, %d deleted)",
		dir, len(res.Files), len(res.Unchanged), len(res.Deleted))
	if res.Version > 0 {
		log.Printf("msync: server store version v%d (pass -base-version %d next time)",
			res.Version, res.Version)
	}
}
